#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "net/params.hpp"
#include "net/topology.hpp"
#include "util/error.hpp"

namespace repro::net {
namespace {

ClusterConfig config(int nranks, int cpus, Network network,
                     std::uint64_t seed = 99) {
  ClusterConfig c;
  c.nranks = nranks;
  c.cpus_per_node = cpus;
  c.network = network;
  c.seed = seed;
  return c;
}

TEST(ParamsTest, AllNetworksDefined) {
  for (Network n : {Network::kTcpGigE, Network::kScoreGigE,
                    Network::kMyrinetGM, Network::kTcpFastEthernet}) {
    const NetworkParams p = params_for(n);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.bandwidth, 0.0);
    EXPECT_GT(p.latency, 0.0);
    EXPECT_GT(p.mtu, 0u);
    EXPECT_FALSE(to_string(n).empty());
  }
}

TEST(ParamsTest, ToStringNamesAreDistinct) {
  std::set<std::string> display;
  std::set<std::string> internal;
  for (Network n : {Network::kTcpGigE, Network::kScoreGigE,
                    Network::kMyrinetGM, Network::kTcpFastEthernet}) {
    display.insert(to_string(n));
    internal.insert(params_for(n).name);
  }
  // Both the display names (figure legends) and the parameter-set slugs
  // (sweep labels, JSON) must be unique per stack.
  EXPECT_EQ(display.size(), 4u);
  EXPECT_EQ(internal.size(), 4u);
}

TEST(ParamsTest, ValidateRejectsDegenerateParams) {
  const NetworkParams good = params_for(Network::kScoreGigE);
  EXPECT_NO_THROW(validate_params(good));

  NetworkParams p = good;
  p.mtu = 0;  // packet math would divide by zero
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.bandwidth = 0.0;
  EXPECT_THROW(validate_params(p), util::Error);
  p.bandwidth = -1e9;
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.copy_bandwidth = 0.0;
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.shm_bandwidth = -1.0;
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.send_overhead = -1e-6;  // negative host costs make no sense
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.jitter_prob_per_rank = 1.5;  // probabilities live in [0, 1]
  EXPECT_THROW(validate_params(p), util::Error);

  p = good;
  p.duplex_exchange_factor = 0.5;  // an exchange cannot beat one-way
  EXPECT_THROW(validate_params(p), util::Error);
}

TEST(ParamsTest, EveryBuiltinSetPassesValidation) {
  for (Network n : {Network::kTcpGigE, Network::kScoreGigE,
                    Network::kMyrinetGM, Network::kTcpFastEthernet}) {
    EXPECT_NO_THROW(validate_params(params_for(n))) << to_string(n);
  }
}

TEST(ParamsTest, StackOrderingMatchesEra) {
  const NetworkParams tcp = params_for(Network::kTcpGigE);
  const NetworkParams score = params_for(Network::kScoreGigE);
  const NetworkParams myri = params_for(Network::kMyrinetGM);
  // Latency: TCP worst, Myrinet best.
  EXPECT_GT(tcp.latency, score.latency);
  EXPECT_GT(score.latency, myri.latency);
  // Effective bandwidth: TCP worst.
  EXPECT_LT(tcp.bandwidth, score.bandwidth);
  EXPECT_LT(score.bandwidth, myri.bandwidth);
  // Host per-packet costs: offloading NICs are nearly free.
  EXPECT_GT(tcp.packet_cost_recv, myri.packet_cost_recv);
  // Only TCP is unstable and interrupt-driven.
  EXPECT_GT(tcp.jitter_prob_per_rank, 0.0);
  EXPECT_EQ(score.jitter_prob_per_rank, 0.0);
  EXPECT_TRUE(tcp.rx_uses_interrupt_cpu);
  EXPECT_FALSE(myri.rx_uses_interrupt_cpu);
}

TEST(ClusterTest, NodePlacement) {
  ClusterNetwork uni(config(8, 1, Network::kScoreGigE));
  EXPECT_EQ(uni.nnodes(), 8);
  EXPECT_EQ(uni.node_of(5), 5);
  ClusterNetwork dual(config(8, 2, Network::kScoreGigE));
  EXPECT_EQ(dual.nnodes(), 4);
  EXPECT_EQ(dual.node_of(0), 0);
  EXPECT_EQ(dual.node_of(1), 0);
  EXPECT_EQ(dual.node_of(2), 1);
  EXPECT_TRUE(dual.same_node(6, 7));
  EXPECT_FALSE(dual.same_node(1, 2));
}

TEST(ClusterTest, RejectsBadConfigs) {
  EXPECT_THROW(ClusterNetwork(config(0, 1, Network::kTcpGigE)), util::Error);
  EXPECT_THROW(ClusterNetwork(config(4, 3, Network::kTcpGigE)), util::Error);
}

TEST(ClusterTest, MessageTimingBasics) {
  ClusterNetwork net(config(2, 1, Network::kScoreGigE));
  const MessageTiming t = net.message(0, 1, 100000, 1.0);
  EXPECT_GT(t.sender_busy, 0.0);
  EXPECT_GT(t.arrival, 1.0 + 100000 / params_for(Network::kScoreGigE).bandwidth);
  EXPECT_GT(t.recv_copy, 0.0);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_DOUBLE_EQ(net.bytes_sent(), 100000.0);
}

TEST(ClusterTest, SelfSendRejected) {
  ClusterNetwork net(config(2, 1, Network::kScoreGigE));
  EXPECT_THROW(net.message(1, 1, 10, 0.0), util::Error);
}

TEST(ClusterTest, LargerMessagesTakeLonger) {
  ClusterNetwork net(config(2, 1, Network::kMyrinetGM));
  const double small = net.message(0, 1, 1000, 0.0).arrival;
  const double large = net.message(0, 1, 1000000, 10.0).arrival - 10.0;
  EXPECT_GT(large, small);
}

TEST(ClusterTest, IntraNodeFasterThanCrossNodeForSan) {
  // SCore/Myrinet use a shared-memory driver within a node.
  ClusterNetwork net(config(4, 2, Network::kMyrinetGM));
  const double intra = net.message(0, 1, 65536, 0.0).arrival;
  const double cross = net.message(0, 2, 65536, 100.0).arrival - 100.0;
  EXPECT_LT(intra, cross);
}

TEST(ClusterTest, FifoPerChannel) {
  ClusterNetwork net(config(4, 1, Network::kTcpGigE, 1234));
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    const MessageTiming t =
        net.message(0, 1, 1000, static_cast<double>(i) * 1e-4);
    EXPECT_GT(t.arrival, last);
    last = t.arrival;
  }
}

TEST(ClusterTest, NicContentionSerializes) {
  // Two big back-to-back messages through one NIC: the second one's
  // arrival is pushed out by roughly the first one's wire time.
  ClusterNetwork net(config(4, 1, Network::kScoreGigE));
  const double wire = 1e6 / params_for(Network::kScoreGigE).bandwidth;
  const MessageTiming a = net.message(0, 1, 1000000, 0.0);
  const MessageTiming b = net.message(0, 2, 1000000, 1e-6);
  EXPECT_GT(b.arrival, a.arrival);
  EXPECT_GT(b.arrival, 2.0 * wire * 0.9);
}

TEST(ClusterTest, IncastContentionAtReceiver) {
  // Many senders into one receiver serialize on the inbound link.
  ClusterNetwork net(config(8, 1, Network::kScoreGigE));
  double last_arrival = 0.0;
  for (int src = 1; src < 8; ++src) {
    const MessageTiming t = net.message(src, 0, 500000, 0.0);
    EXPECT_GT(t.arrival, last_arrival);
    last_arrival = t.arrival;
  }
  const double wire = 500000 / params_for(Network::kScoreGigE).bandwidth;
  EXPECT_GT(last_arrival, 7 * wire * 0.9);
}

TEST(ClusterTest, JitterDeterministicPerSeed) {
  auto arrivals = [](std::uint64_t seed) {
    ClusterNetwork net(config(8, 1, Network::kTcpGigE, seed));
    std::vector<double> out;
    for (int i = 0; i < 30; ++i) {
      out.push_back(net.message(0, 1, 50000, i * 0.1).arrival);
    }
    return out;
  };
  EXPECT_EQ(arrivals(5), arrivals(5));
  EXPECT_NE(arrivals(5), arrivals(6));
}

TEST(ClusterTest, JitterOnsetAtFourRanks) {
  // Below the onset rank count, TCP timings are deterministic functions of
  // the message (no flow-control incidents): two consecutive identical,
  // uncontended messages take identical times.
  ClusterNetwork net2(config(2, 1, Network::kTcpGigE, 7));
  const double d1 =
      net2.message(0, 1, 50000, 0.0).arrival - 0.0;
  const double d2 = net2.message(0, 1, 50000, 100.0).arrival - 100.0;
  EXPECT_NEAR(d1, d2, 1e-9);

  // At 8 ranks some of a series of messages must hit incidents: timings
  // spread out.
  ClusterNetwork net8(config(8, 1, Network::kTcpGigE, 7));
  double min_d = 1e30;
  double max_d = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double t0 = i * 10.0;
    const double d = net8.message(0, 1, 50000, t0).arrival - t0;
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_GT(max_d / min_d, 1.5);
}

TEST(ClusterTest, ExchangePenaltyOnlyForTcp) {
  ClusterNetwork tcp(config(2, 1, Network::kTcpGigE));
  const double one_way = tcp.message(0, 1, 500000, 0.0).arrival;
  const double exch =
      tcp.message(0, 1, 500000, 1000.0, /*exchange=*/true).arrival - 1000.0;
  EXPECT_GT(exch, one_way * 1.5);

  ClusterNetwork myri(config(2, 1, Network::kMyrinetGM));
  const double m1 = myri.message(0, 1, 500000, 0.0).arrival;
  const double m2 =
      myri.message(0, 1, 500000, 1000.0, /*exchange=*/true).arrival - 1000.0;
  EXPECT_NEAR(m1, m2, 1e-9);
}

TEST(ClusterTest, SmpPenaltiesOnlyWithTwoRanksPerNode) {
  // 3 ranks keeps TCP jitter off (onset is 4), isolating the SMP effects.
  ClusterNetwork uni(config(3, 1, Network::kTcpGigE, 3));
  ClusterNetwork dual(config(3, 2, Network::kTcpGigE, 3));
  EXPECT_DOUBLE_EQ(uni.compute_factor(0), 1.0);
  EXPECT_GT(dual.compute_factor(0), 1.0);
  // Cross-node message touching a dual node is slower than between uni
  // nodes (interrupt-routing bandwidth collapse).
  const double u = uni.message(0, 2, 200000, 0.0).arrival;
  const double d = dual.message(0, 2, 200000, 0.0).arrival;
  EXPECT_GT(d, u * 1.5);
}

TEST(ClusterTest, DualNodeWithSingleRankLeftoverIsUnpenalized) {
  // 3 ranks on dual nodes: node 1 hosts only rank 2.
  ClusterNetwork net(config(3, 2, Network::kTcpGigE));
  EXPECT_GT(net.compute_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(net.compute_factor(2), 1.0);
}

// Generic invariants that must hold for every stack.
class AllNetworksTest : public ::testing::TestWithParam<Network> {};

TEST_P(AllNetworksTest, ZeroByteMessagesAreValid) {
  ClusterNetwork net(config(4, 1, GetParam()));
  const MessageTiming t = net.message(0, 1, 0, 0.0);
  EXPECT_GT(t.arrival, 0.0);
  EXPECT_GE(t.sender_busy, 0.0);
}

TEST_P(AllNetworksTest, TimingScalesWithBytes) {
  ClusterNetwork net(config(2, 1, GetParam()));
  double last = 0.0;
  double t0 = 0.0;
  for (std::size_t bytes : {1000u, 10000u, 100000u, 1000000u}) {
    t0 += 1000.0;  // keep the NIC idle between probes
    const double d = net.message(0, 1, bytes, t0).arrival - t0;
    EXPECT_GT(d, last);
    last = d;
  }
}

TEST_P(AllNetworksTest, LatencyFloorRespected) {
  ClusterNetwork net(config(2, 1, GetParam()));
  const double d = net.message(0, 1, 1, 0.0).arrival;
  EXPECT_GE(d, params_for(GetParam()).latency);
}

TEST_P(AllNetworksTest, IntraNodeNeverUsesTheWire) {
  // Dual-node intra-node messages must be cheaper than cross-node ones of
  // the same size for every stack (loopback or shared memory).
  ClusterNetwork net(config(4, 2, GetParam()));
  const double intra = net.message(0, 1, 200000, 0.0).arrival;
  const double cross = net.message(0, 2, 200000, 1000.0).arrival - 1000.0;
  EXPECT_LT(intra, cross);
}

INSTANTIATE_TEST_SUITE_P(Stacks, AllNetworksTest,
                         ::testing::Values(Network::kTcpGigE,
                                           Network::kScoreGigE,
                                           Network::kMyrinetGM,
                                           Network::kTcpFastEthernet),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(FastEthernetTest, SlowerWireSameProtocolPath) {
  const NetworkParams ge = params_for(Network::kTcpGigE);
  const NetworkParams fe = params_for(Network::kTcpFastEthernet);
  EXPECT_LT(fe.bandwidth, ge.bandwidth);
  EXPECT_EQ(fe.packet_cost_recv, ge.packet_cost_recv);
  EXPECT_EQ(fe.rx_uses_interrupt_cpu, ge.rx_uses_interrupt_cpu);
  EXPECT_GT(fe.jitter_prob_per_rank, 0.0);
}

TEST(ClusterTest, ResourceRegistryCoversEveryNode) {
  ClusterNetwork net(config(4, 2, Network::kTcpGigE));
  const auto& reg = net.resources();
  ASSERT_EQ(reg.size(), 6u);  // 2 nodes x {nic_tx, nic_rx, irq_cpu}
  EXPECT_EQ(reg[0]->name(), "node0/nic_tx");
  EXPECT_EQ(reg[1]->name(), "node0/nic_rx");
  EXPECT_EQ(reg[2]->name(), "node0/irq_cpu");
  EXPECT_EQ(reg[3]->name(), "node1/nic_tx");
  EXPECT_EQ(reg[4]->name(), "node1/nic_rx");
  EXPECT_EQ(reg[5]->name(), "node1/irq_cpu");
  for (const sim::Resource* r : reg) EXPECT_EQ(r->acquisitions(), 0u);
}

TEST(ClusterTest, ChannelCountersAccumulate) {
  // SCore: no jitter, uni nodes, no exchange — wire time is exactly
  // bytes / bandwidth, so the channel counters are exact.
  ClusterNetwork net(config(3, 1, Network::kScoreGigE));
  net.message(0, 1, 1000, 0.0);
  net.message(0, 1, 2000, 10.0);
  const ChannelStats& ch = net.channel(0, 1);
  EXPECT_EQ(ch.messages, 2u);
  EXPECT_DOUBLE_EQ(ch.bytes, 3000.0);
  EXPECT_DOUBLE_EQ(ch.wire_time,
                   3000.0 / params_for(Network::kScoreGigE).bandwidth);
  EXPECT_GE(ch.stall_time, 0.0);
  // Directional: the reverse channel and unrelated pairs stay empty.
  EXPECT_EQ(net.channel(1, 0).messages, 0u);
  EXPECT_EQ(net.channel(0, 2).messages, 0u);
  EXPECT_THROW(net.channel(0, 3), util::Error);
  EXPECT_THROW(net.channel(-1, 1), util::Error);
}

TEST(ClusterTest, IntraNodeMessagesCarryNoWireTime) {
  // Shared-memory driver: the wire (and the NICs) are never touched.
  ClusterNetwork net(config(2, 2, Network::kMyrinetGM));
  net.message(0, 1, 50000, 0.0);
  EXPECT_EQ(net.channel(0, 1).messages, 1u);
  EXPECT_DOUBLE_EQ(net.channel(0, 1).wire_time, 0.0);
  for (const sim::Resource* r : net.resources()) {
    EXPECT_EQ(r->acquisitions(), 0u) << r->name();
  }
}

TEST(ClusterTest, IdleInboundLinkOccupiedForExactlyOneWireTime) {
  // Regression for the inbound-link occupancy clamp: a single cross-node
  // message on an otherwise idle network must occupy the receiver's link
  // for exactly one wire time, with no queueing, starting one latency
  // after the outbound link started — never before the first bit left the
  // sender.
  ClusterNetwork net(config(2, 1, Network::kScoreGigE));
  const NetworkParams& p = params_for(Network::kScoreGigE);
  const double wire = 100000.0 / p.bandwidth;
  net.message(0, 1, 100000, 0.0);
  const sim::Resource* tx = net.resources()[0];
  const sim::Resource* rx = net.resources()[4];
  ASSERT_EQ(tx->name(), "node0/nic_tx");
  ASSERT_EQ(rx->name(), "node1/nic_rx");
  EXPECT_DOUBLE_EQ(tx->busy_time(), wire);
  EXPECT_DOUBLE_EQ(rx->busy_time(), wire);
  EXPECT_DOUBLE_EQ(rx->queue_wait_time(), 0.0);
  // Occupancy windows are offset by exactly the propagation latency.
  EXPECT_DOUBLE_EQ(rx->free_at(), tx->free_at() + p.latency);
}

TEST(ClusterTest, ArrivalNeverPrecedesSend) {
  ClusterNetwork net(config(16, 2, Network::kTcpGigE, 77));
  util::Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const int src = static_cast<int>(rng.uniform_index(16));
    int dst = static_cast<int>(rng.uniform_index(16));
    if (dst == src) dst = (dst + 1) % 16;
    t += rng.uniform(0.0, 0.01);
    const auto bytes = static_cast<std::size_t>(rng.uniform_index(100000));
    const MessageTiming m = net.message(src, dst, bytes, t);
    EXPECT_GE(m.arrival, t);
    EXPECT_GE(m.sender_busy, 0.0);
    EXPECT_GE(m.sender_stall, 0.0);
  }
}

// --- sparse channel accounting --------------------------------------------

TEST(ClusterTest, UntouchedChannelIsZero) {
  ClusterNetwork net(config(8, 1, Network::kScoreGigE));
  net.message(0, 1, 1000, 0.0);
  const ChannelStats& used = net.channel(0, 1);
  EXPECT_EQ(used.messages, 1u);
  // A pair that never exchanged a message still reads as all-zero.
  const ChannelStats& idle = net.channel(5, 6);
  EXPECT_EQ(idle.messages, 0u);
  EXPECT_DOUBLE_EQ(idle.bytes, 0.0);
  EXPECT_DOUBLE_EQ(idle.stall_time, 0.0);
  EXPECT_DOUBLE_EQ(idle.wire_time, 0.0);
}

TEST(ClusterTest, ChannelAccessorKeepsBoundsChecks) {
  ClusterNetwork net(config(4, 1, Network::kScoreGigE));
  EXPECT_THROW(net.channel(-1, 0), util::Error);
  EXPECT_THROW(net.channel(0, 4), util::Error);
  EXPECT_THROW(net.channel(4, 0), util::Error);
}

TEST(ClusterTest, ForEachChannelVisitsOnlyUsedPairsInOrder) {
  ClusterNetwork net(config(8, 1, Network::kScoreGigE));
  // Touch three pairs in shuffled order.
  net.message(5, 2, 100, 0.0);
  net.message(0, 7, 200, 0.1);
  net.message(5, 1, 300, 0.2);
  std::vector<std::pair<int, int>> seen;
  net.for_each_channel([&](int src, int dst, const ChannelStats& ch) {
    EXPECT_GE(ch.messages, 1u);
    seen.emplace_back(src, dst);
  });
  // Deterministic (src, dst) order, untouched pairs absent.
  EXPECT_EQ(seen, (std::vector<std::pair<int, int>>{
                      {0, 7}, {5, 1}, {5, 2}}));
}

// --- topology specs -------------------------------------------------------

TEST(TopologyTest, SpecParseRoundTrips) {
  for (const char* text :
       {"single", "fattree:radix=16,over=1", "fattree:radix=8,over=4",
        "torus", "torus:x=4,y=4,z=2"}) {
    const TopologySpec spec = parse_topology_spec(text);
    EXPECT_EQ(to_string(spec), text);
    // The canonical string parses back to itself.
    EXPECT_EQ(to_string(parse_topology_spec(to_string(spec))),
              to_string(spec));
  }
  // Bare kinds expand to their canonical forms.
  EXPECT_EQ(to_string(parse_topology_spec("fattree")),
            "fattree:radix=16,over=1");
  EXPECT_EQ(to_string(parse_topology_spec("torus")), "torus");
}

TEST(TopologyTest, SpecParseErrors) {
  EXPECT_THROW(parse_topology_spec("mesh"), util::Error);
  EXPECT_THROW(parse_topology_spec("single:radix=4"), util::Error);
  EXPECT_THROW(parse_topology_spec("fattree:radix"), util::Error);
  EXPECT_THROW(parse_topology_spec("fattree:radix=abc"), util::Error);
  EXPECT_THROW(parse_topology_spec("fattree:x=4"), util::Error);
  EXPECT_THROW(parse_topology_spec("torus:over=2"), util::Error);
}

TEST(TopologyTest, SpecValidationErrors) {
  EXPECT_THROW(parse_topology_spec("fattree:radix=0"), util::Error);
  EXPECT_THROW(parse_topology_spec("fattree:over=0.5"), util::Error);
  EXPECT_THROW(parse_topology_spec("torus:x=-2"), util::Error);
  // A fixed grid too small for the cluster fails at network construction.
  ClusterConfig c = config(16, 1, Network::kScoreGigE);
  c.topology = parse_topology_spec("torus:x=2,y=2");
  EXPECT_THROW(ClusterNetwork{c}, util::Error);
}

// --- fat-tree -------------------------------------------------------------

TEST(TopologyTest, FatTreeSameSwitchMatchesSingleSwitch) {
  // All four nodes sit under one edge switch, so every message timing must
  // be byte-identical to the single-switch model.
  ClusterConfig single = config(4, 1, Network::kScoreGigE);
  ClusterConfig tree = single;
  tree.topology = parse_topology_spec("fattree:radix=16,over=4");
  ClusterNetwork a{single};
  ClusterNetwork b{tree};
  for (int i = 0; i < 20; ++i) {
    const int src = i % 4;
    const int dst = (i + 1) % 4;
    const double t = i * 0.001;
    const MessageTiming ma = a.message(src, dst, 4096, t);
    const MessageTiming mb = b.message(src, dst, 4096, t);
    EXPECT_DOUBLE_EQ(ma.arrival, mb.arrival);
    EXPECT_DOUBLE_EQ(ma.wire_time, mb.wire_time);
    EXPECT_DOUBLE_EQ(ma.sender_stall, mb.sender_stall);
  }
}

TEST(TopologyTest, FatTreeCrossSwitchSlowerThanSameSwitch) {
  // radix=2: nodes {0,1} and {2,3} sit on different edge switches.
  ClusterConfig c = config(4, 1, Network::kScoreGigE);
  c.topology = parse_topology_spec("fattree:radix=2,over=1");
  ClusterNetwork net{c};
  const double same_sw = net.message(0, 1, 65536, 0.0).arrival;
  const double cross_sw = net.message(0, 2, 65536, 100.0).arrival - 100.0;
  EXPECT_GT(cross_sw, same_sw);
  // The cross-switch message occupied the uplink and the downlink.
  const MessageTiming cross = net.message(1, 3, 65536, 200.0);
  const MessageTiming same = net.message(1, 0, 65536, 300.0);
  EXPECT_GT(cross.wire_time, same.wire_time);
}

TEST(TopologyTest, OversubscriptionSlowsCrossSwitchTraffic) {
  ClusterConfig full = config(4, 1, Network::kScoreGigE);
  full.topology = parse_topology_spec("fattree:radix=2,over=1");
  ClusterConfig over = full;
  over.topology = parse_topology_spec("fattree:radix=2,over=8");
  ClusterNetwork a{full};
  ClusterNetwork b{over};
  const double t_full = a.message(0, 2, 1 << 20, 0.0).arrival;
  const double t_over = b.message(0, 2, 1 << 20, 0.0).arrival;
  EXPECT_GT(t_over, t_full);
  // Same-switch traffic is unaffected by oversubscription.
  EXPECT_DOUBLE_EQ(a.message(0, 1, 1 << 20, 100.0).arrival,
                   b.message(0, 1, 1 << 20, 100.0).arrival);
}

TEST(TopologyTest, FatTreeUplinkContentionSerializes) {
  // Two senders on switch 0 target switch 1 at the same instant: the
  // shared uplink serializes them, unlike the single switch where only
  // the endpoint NICs are shared.
  ClusterConfig c = config(4, 1, Network::kScoreGigE);
  c.topology = parse_topology_spec("fattree:radix=2,over=1");
  ClusterNetwork net{c};
  const double first = net.message(0, 2, 1 << 20, 0.0).arrival;
  const double second = net.message(1, 3, 1 << 20, 0.0).arrival;
  EXPECT_GT(second, first);
  // The uplink resource shows both acquisitions.
  std::uint64_t uplink_acqs = 0;
  for (const sim::Resource* link : net.fabric_links()) {
    if (link->name() == "sw0/up") uplink_acqs = link->acquisitions();
  }
  EXPECT_EQ(uplink_acqs, 2u);
}

// --- torus ----------------------------------------------------------------

TEST(TopologyTest, TorusHopDistances) {
  const Topology topo(parse_topology_spec("torus:x=4,y=4"), 16);
  EXPECT_EQ(topo.hops(0, 0), 0);
  EXPECT_EQ(topo.hops(0, 1), 1);    // +x neighbor
  EXPECT_EQ(topo.hops(0, 3), 1);    // wraparound: 3 is 0's -x neighbor
  EXPECT_EQ(topo.hops(0, 4), 1);    // +y neighbor
  EXPECT_EQ(topo.hops(0, 5), 2);    // diagonal
  EXPECT_EQ(topo.hops(0, 10), 4);   // opposite corner: 2 + 2
  EXPECT_EQ(topo.hops(1, 0), 1);    // symmetric
}

TEST(TopologyTest, TorusMoreHopsArriveLater) {
  ClusterConfig c = config(16, 1, Network::kScoreGigE);
  c.topology = parse_topology_spec("torus:x=4,y=4");
  ClusterNetwork net{c};
  const double one_hop = net.message(0, 1, 65536, 0.0).arrival;
  const double four_hops = net.message(0, 10, 65536, 100.0).arrival - 100.0;
  EXPECT_GT(four_hops, one_hop);
}

TEST(TopologyTest, FabricLinksEmptyOnSingleSwitch) {
  ClusterNetwork net(config(4, 1, Network::kScoreGigE));
  EXPECT_TRUE(net.fabric_links().empty());
  EXPECT_TRUE(net.topology().single());
}

}  // namespace
}  // namespace repro::net
