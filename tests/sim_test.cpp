#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "sim/resource.hpp"
#include "util/error.hpp"

namespace repro::sim {
namespace {

TEST(ResourceTest, FifoQueueing) {
  Resource r("nic");
  const Interval a = r.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(a.begin, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  // Requested during occupancy: queued behind.
  const Interval b = r.acquire(1.0, 3.0);
  EXPECT_DOUBLE_EQ(b.begin, 2.0);
  EXPECT_DOUBLE_EQ(b.end, 5.0);
  EXPECT_DOUBLE_EQ(b.wait(1.0), 1.0);
  // Requested after it frees: immediate.
  const Interval c = r.acquire(10.0, 1.0);
  EXPECT_DOUBLE_EQ(c.begin, 10.0);
  EXPECT_DOUBLE_EQ(r.busy_time(), 6.0);
  EXPECT_EQ(r.acquisitions(), 3u);
}

TEST(ResourceTest, RejectsNegativeDuration) {
  Resource r;
  EXPECT_THROW(r.acquire(0.0, -1.0), util::Error);
}

TEST(ResourceTest, UtilizationCounters) {
  Resource r("nic");
  r.acquire(0.0, 1.0);  // idle: no wait
  r.acquire(0.5, 1.0);  // queued until 1.0: waits 0.5
  r.acquire(1.0, 2.0);  // queued until 2.0: waits 1.0
  EXPECT_DOUBLE_EQ(r.busy_time(), 4.0);
  EXPECT_EQ(r.acquisitions(), 3u);
  EXPECT_DOUBLE_EQ(r.queue_wait_time(), 1.5);
  EXPECT_DOUBLE_EQ(r.max_queue_wait(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_queue_wait(), 0.5);
  // 4 busy seconds over an 8-second run: half utilized.
  EXPECT_DOUBLE_EQ(r.utilization(8.0), 0.5);
  EXPECT_DOUBLE_EQ(r.utilization(0.0), 0.0);
}

TEST(ResourceTest, ResetClearsUtilizationCounters) {
  Resource r("nic");
  r.acquire(0.0, 2.0);
  r.acquire(0.0, 1.0);
  ASSERT_GT(r.queue_wait_time(), 0.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.busy_time(), 0.0);
  EXPECT_EQ(r.acquisitions(), 0u);
  EXPECT_DOUBLE_EQ(r.queue_wait_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_queue_wait(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_queue_wait(), 0.0);
}

TEST(EngineTest, SingleRankRunsToCompletion) {
  Engine engine(1);
  double end_time = -1.0;
  engine.run([&](RankCtx& ctx) {
    ctx.advance(1.5);
    ctx.advance(0.5);
    end_time = ctx.now();
  });
  EXPECT_DOUBLE_EQ(end_time, 2.0);
}

TEST(EngineTest, MessageDeliveryWakesBlockedRank) {
  Engine engine(2);
  double received_at = -1.0;
  int payload_value = 0;
  engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(1.0);
      ctx.checkpoint();
      ctx.post(3.0, 1, 42);
    } else {
      ctx.checkpoint();
      while (ctx.inbox().empty()) ctx.block();
      received_at = ctx.now();
      payload_value = *ctx.inbox().front().payload.get_if<int>();
      ctx.inbox().pop_front();
    }
  });
  EXPECT_DOUBLE_EQ(received_at, 3.0);
  EXPECT_EQ(payload_value, 42);
}

TEST(EngineTest, MinClockRankRunsFirst) {
  // Rank 1 (behind in virtual time) must observe shared state before rank 0
  // acts at a later virtual time: both post to rank 2, arrival order must
  // be by virtual send time, not thread scheduling.
  Engine engine(3);
  std::vector<int> order;
  engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(5.0);
      ctx.checkpoint();
      ctx.post(ctx.now(), 2, 100);
    } else if (ctx.rank() == 1) {
      ctx.advance(1.0);
      ctx.checkpoint();
      ctx.post(ctx.now(), 2, 200);
    } else {
      ctx.checkpoint();
      while (order.size() < 2) {
        while (ctx.inbox().empty()) ctx.block();
        order.push_back(*ctx.inbox().front().payload.get_if<int>());
        ctx.inbox().pop_front();
      }
    }
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 200);  // sent at t=1
  EXPECT_EQ(order[1], 100);  // sent at t=5
}

TEST(EngineTest, DeliveriesArriveInTimeOrder) {
  Engine engine(2);
  std::vector<double> times;
  engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.checkpoint();
      // Post out of order; the engine must deliver in time order.
      ctx.post(5.0, 1, 1);
      ctx.post(2.0, 1, 2);
      ctx.post(9.0, 1, 3);
    } else {
      ctx.advance(0.5);
      ctx.checkpoint();
      while (times.size() < 3) {
        while (ctx.inbox().empty()) ctx.block();
        times.push_back(ctx.inbox().front().time);
        ctx.inbox().pop_front();
      }
    }
  });
  ASSERT_EQ(times.size(), 3u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_DOUBLE_EQ(times[0], 2.0);
}

TEST(EngineTest, WokenRankClockAdvancesToArrival) {
  Engine engine(2);
  double woken_clock = -1.0;
  engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(1.0);
      ctx.checkpoint();
      ctx.post(7.5, 1, 0);
    } else {
      ctx.checkpoint();
      while (ctx.inbox().empty()) ctx.block();
      woken_clock = ctx.now();
    }
  });
  EXPECT_DOUBLE_EQ(woken_clock, 7.5);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(4);
    std::vector<double> finish(4);
    engine.run([&](RankCtx& ctx) {
      // Ping-pong chain: rank r sends to r+1 after computing.
      ctx.advance(0.1 * (ctx.rank() + 1));
      ctx.checkpoint();
      if (ctx.rank() < 3) ctx.post(ctx.now() + 0.05, ctx.rank() + 1, 0);
      if (ctx.rank() > 0) {
        while (ctx.inbox().empty()) ctx.block();
      }
      finish[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    });
    return finish;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(EngineTest, DeadlockIsDetected) {
  Engine engine(2);
  EXPECT_THROW(engine.run([&](RankCtx& ctx) {
    ctx.checkpoint();
    ctx.block();  // nobody will ever wake anyone
  }),
               util::Error);
}

TEST(EngineTest, RankExceptionPropagates) {
  Engine engine(3);
  EXPECT_THROW(engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 1) {
      throw util::Error("rank 1 exploded");
    }
    ctx.checkpoint();
    ctx.block();  // would deadlock, but the abort tears it down
  }),
               util::Error);
}

TEST(EngineTest, AdvanceRejectsNegative) {
  Engine engine(1);
  EXPECT_THROW(
      engine.run([&](RankCtx& ctx) { ctx.advance(-1.0); }),
      util::Error);
}

TEST(EngineTest, ManyRanksStress) {
  constexpr int kRanks = 32;
  Engine engine(kRanks);
  std::vector<int> received(kRanks, 0);
  engine.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    ctx.checkpoint();
    // Everyone sends to everyone (including a ring of dependencies).
    for (int d = 0; d < kRanks; ++d) {
      if (d != r) ctx.post(ctx.now() + 0.001 * (d + 1), d, r);
    }
    while (received[static_cast<std::size_t>(r)] < kRanks - 1) {
      while (ctx.inbox().empty()) ctx.block();
      ctx.inbox().pop_front();
      ++received[static_cast<std::size_t>(r)];
    }
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(received[static_cast<std::size_t>(r)], kRanks - 1);
  EXPECT_EQ(engine.events_processed(), static_cast<std::uint64_t>(kRanks * (kRanks - 1)));
}

// Fuzz: random compute/send interleavings must execute deterministically —
// identical clocks and identical message-consumption orders across runs.
class EngineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzzTest, RandomWorkloadIsDeterministic) {
  const int nranks = GetParam();
  const int kMessages = std::min(nranks - 1, 6);
  auto run_once = [&](std::uint64_t seed) {
    Engine engine(nranks);
    std::vector<double> finish(static_cast<std::size_t>(nranks));
    std::vector<std::vector<int>> orders(static_cast<std::size_t>(nranks));
    engine.run([&](RankCtx& ctx) {
      util::Rng rng(util::mix_seed(seed, ctx.rank()));
      const int r = ctx.rank();
      // Send kMessages with random compute gaps and random network delays;
      // each rank also receives exactly kMessages (ring destinations).
      for (int k = 1; k <= kMessages; ++k) {
        ctx.advance(rng.uniform(0.0, 0.5));
        ctx.checkpoint();
        ctx.post(ctx.now() + rng.uniform(0.01, 0.3), (r + k) % nranks,
                 r * 100 + k);
      }
      for (int k = 0; k < kMessages; ++k) {
        ctx.checkpoint();
        while (ctx.inbox().empty()) ctx.block();
        orders[static_cast<std::size_t>(r)].push_back(
            *ctx.inbox().front().payload.get_if<int>());
        ctx.inbox().pop_front();
      }
      finish[static_cast<std::size_t>(r)] = ctx.now();
    });
    return std::pair(finish, orders);
  };
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = run_once(seed);
    const auto b = run_once(seed);
    EXPECT_EQ(a.first, b.first) << "seed " << seed;
    EXPECT_EQ(a.second, b.second) << "seed " << seed;
    // Every rank consumed the full set.
    for (const auto& order : a.second) {
      EXPECT_EQ(order.size(), static_cast<std::size_t>(kMessages));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineFuzzTest,
                         ::testing::Values(2, 3, 5, 9, 16));

TEST(EngineTest, ContextSwitchesAreCounted) {
  Engine engine(2);
  engine.run([&](RankCtx& ctx) {
    ctx.checkpoint();
    ctx.checkpoint();
  });
  EXPECT_GE(engine.context_switches(), 4u);
}

TEST(EngineTest, RerunAfterAbortStartsClean) {
  Engine engine(2);
  // First run dies in rank 0 while rank 1 has a message in flight.
  EXPECT_THROW(engine.run([&](RankCtx& ctx) {
                 if (ctx.rank() == 0) {
                   ctx.post(ctx.now() + 100.0, 1, 42);
                   throw util::Error("boom");
                 }
                 ctx.advance(1.0);
                 ctx.checkpoint();
               }),
               util::Error);

  // The rerun must not see the aborted run's event, abort flag, or error,
  // and the statistics must be this run's alone.
  std::vector<int> ran(2, 0);
  std::vector<std::size_t> leftovers(2, 0);
  engine.run([&](RankCtx& ctx) {
    ctx.advance(200.0);  // past the stale event's delivery time
    ctx.checkpoint();
    ran[static_cast<std::size_t>(ctx.rank())] = 1;
    leftovers[static_cast<std::size_t>(ctx.rank())] = ctx.inbox().size();
    EXPECT_DOUBLE_EQ(ctx.now(), 200.0);  // clocks restarted at zero
  });
  EXPECT_EQ(ran, (std::vector<int>{1, 1}));
  EXPECT_EQ(leftovers, (std::vector<std::size_t>{0, 0}));
}

TEST(EngineTest, RerunResetsStatistics) {
  Engine engine(2);
  engine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) ctx.post(ctx.now(), 1, 1);
    ctx.checkpoint();
  });
  const std::uint64_t events_first = engine.events_processed();
  EXPECT_GE(events_first, 1u);

  // A rerun that posts nothing must report zero events, not a cumulative
  // count across runs.
  engine.run([&](RankCtx& ctx) { ctx.advance(1.0); });
  EXPECT_EQ(engine.events_processed(), 0u);
  EXPECT_LT(engine.context_switches(), 100u);
}

TEST(FiberStackKbTest, ParsesPlainValues) {
  EXPECT_EQ(parse_fiber_stack_kb("4096"), std::size_t{4096} * 1024);
  EXPECT_EQ(parse_fiber_stack_kb("+128"), std::size_t{128} * 1024);
}

TEST(FiberStackKbTest, ClampsTinyValuesToTheFloor) {
  // 1 KiB cannot hold a rank main's frames; clamp, don't crash later.
  EXPECT_EQ(parse_fiber_stack_kb("1"), kMinFiberStackBytes);
  EXPECT_EQ(parse_fiber_stack_kb("63"), kMinFiberStackBytes);
  EXPECT_EQ(parse_fiber_stack_kb("64"), kMinFiberStackBytes);
  EXPECT_GT(parse_fiber_stack_kb("65"), kMinFiberStackBytes);
}

TEST(FiberStackKbTest, RejectsNonNumericInput) {
  EXPECT_THROW(parse_fiber_stack_kb(""), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("abc"), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("12abc"), util::Error);  // atol trap
  EXPECT_THROW(parse_fiber_stack_kb("4096 "), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("0x100"), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("+"), util::Error);
}

TEST(FiberStackKbTest, RejectsZeroAndNegative) {
  // "0" used to silently produce a zero-size stack and a crash at the
  // first fiber switch.
  EXPECT_THROW(parse_fiber_stack_kb("0"), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("-1"), util::Error);
  EXPECT_THROW(parse_fiber_stack_kb("-4096"), util::Error);
}

TEST(EngineTest, DeadlockReportSummarizesLargeRankCounts) {
  // 20 ranks all block forever: the report must carry the state counts
  // but list only the first 8 offenders, not all 20.
  constexpr int kRanks = 20;
  Engine engine(kRanks);
  try {
    engine.run([](RankCtx& ctx) { ctx.block(); });
    FAIL() << "expected deadlock";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("simulation deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("20 ranks: 0 ready, 20 blocked, 0 done"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("[rank 0:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[rank 7:"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("[rank 8:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(+12 more)"), std::string::npos) << msg;
  }
}

TEST(EngineTest, DeadlockReportListsAllRanksWhenFew) {
  Engine engine(2);
  try {
    engine.run([](RankCtx& ctx) { ctx.block(); });
    FAIL() << "expected deadlock";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 ranks: 0 ready, 2 blocked, 0 done"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("[rank 1:"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("more)"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace repro::sim
