#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"

namespace repro::mpi {
namespace {

// Runs `body` on a simulated cluster and returns the per-rank recorders.
std::vector<perf::RankRecorder> run_cluster(
    int nranks, const std::function<void(Comm&)>& body,
    net::Network network = net::Network::kScoreGigE) {
  net::ClusterConfig config;
  config.nranks = nranks;
  config.network = network;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nranks));
  sim::Engine engine(nranks);
  engine.run([&](sim::RankCtx& ctx) {
    Comm comm(ctx, cluster,
              recorders[static_cast<std::size_t>(ctx.rank())]);
    body(comm);
  });
  return recorders;
}

TEST(P2PTest, SendRecvDeliversBytes) {
  run_cluster(2, [](Comm& comm) {
    const std::vector<int> data{1, 2, 3, 4, 5};
    if (comm.rank() == 0) {
      comm.send(1, 7, data.data(), data.size() * sizeof(int));
    } else {
      std::vector<int> got(5);
      const std::size_t n = comm.recv(0, 7, got.data(), 5 * sizeof(int));
      EXPECT_EQ(n, 5 * sizeof(int));
      EXPECT_EQ(got, data);
    }
  });
}

TEST(P2PTest, TagMatching) {
  run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 10;
      const int b = 20;
      comm.send(1, /*tag=*/1, &a, sizeof(a));
      comm.send(1, /*tag=*/2, &b, sizeof(b));
    } else {
      int got = 0;
      // Receive tag 2 first even though tag 1 arrived first.
      comm.recv(0, 2, &got, sizeof(got));
      EXPECT_EQ(got, 20);
      comm.recv(0, 1, &got, sizeof(got));
      EXPECT_EQ(got, 10);
    }
  });
}

TEST(P2PTest, AnySourceMatchesEarliestArrival) {
  run_cluster(3, [](Comm& comm) {
    if (comm.rank() == 2) {
      int got = 0;
      comm.recv(kAnySource, 5, &got, sizeof(got));
      // rank 1's message was sent at an earlier virtual time.
      EXPECT_EQ(got, 111);
      comm.recv(kAnySource, 5, &got, sizeof(got));
      EXPECT_EQ(got, 222);
    } else if (comm.rank() == 1) {
      const int v = 111;
      comm.send(2, 5, &v, sizeof(v));
    } else {
      comm.compute(1.0);  // rank 0 sends much later
      const int v = 222;
      comm.send(2, 5, &v, sizeof(v));
    }
  });
}

TEST(P2PTest, ChannelFifoOrder) {
  run_cluster(2, [](Comm& comm) {
    constexpr int kN = 20;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send(1, 3, &i, sizeof(i));
    } else {
      for (int i = 0; i < kN; ++i) {
        int got = -1;
        comm.recv(0, 3, &got, sizeof(got));
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(P2PTest, SelfSend) {
  run_cluster(1, [](Comm& comm) {
    const double x = 3.5;
    comm.send(0, 9, &x, sizeof(x));
    double got = 0.0;
    comm.recv(0, 9, &got, sizeof(got));
    EXPECT_DOUBLE_EQ(got, 3.5);
  });
}

TEST(P2PTest, IsendIrecvWait) {
  run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 77;
      Request s = comm.isend(1, 4, &v, sizeof(v));
      comm.wait(s);
      EXPECT_TRUE(s.done);
    } else {
      int got = 0;
      Request r = comm.irecv(0, 4, &got, sizeof(got));
      comm.wait(r);
      EXPECT_EQ(got, 77);
      EXPECT_EQ(r.received, sizeof(int));
    }
  });
}

TEST(P2PTest, RecvWaitIsCommunicationTime) {
  auto recs = run_cluster(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(1.0);  // make the receiver wait
      const int v = 1;
      comm.send(1, 8, &v, sizeof(v));
    } else {
      int got;
      comm.recv(0, 8, &got, sizeof(got));
    }
  });
  // The receiver's blocked second shows up as communication (data-op time).
  EXPECT_GT(recs[1].time(perf::Component::kOther, perf::Kind::kComm), 0.9);
}

TEST(P2PTest, OversizeMessageRejected) {
  EXPECT_THROW(run_cluster(2,
                           [](Comm& comm) {
                             if (comm.rank() == 0) {
                               const std::vector<char> big(100);
                               comm.send(1, 1, big.data(), big.size());
                             } else {
                               char small[10];
                               comm.recv(0, 1, small, sizeof(small));
                             }
                           }),
               util::Error);
}

// --- collectives over a sweep of communicator sizes -----------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, Barrier) {
  const int p = GetParam();
  auto recs = run_cluster(p, [](Comm& comm) {
    comm.compute(0.01 * comm.rank());
    comm.barrier();
    comm.barrier();
  });
  // Barrier time is synchronization, not communication.
  for (const auto& r : recs) {
    EXPECT_EQ(r.time(perf::Component::kOther, perf::Kind::kComm), 0.0);
    if (recs.size() > 1) {
      EXPECT_GE(r.time(perf::Component::kOther, perf::Kind::kSync), 0.0);
    }
  }
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run_cluster(p, [root](Comm& comm) {
      std::vector<double> data(17, comm.rank() == root ? 42.0 : 0.0);
      comm.bcast(data.data(), data.size() * sizeof(double), root);
      for (double v : data) EXPECT_DOUBLE_EQ(v, 42.0);
    });
  }
}

TEST_P(CollectiveTest, ReduceSumToRoot) {
  const int p = GetParam();
  run_cluster(p, [p](Comm& comm) {
    std::vector<double> data(8);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = comm.rank() + static_cast<double>(i) * 10.0;
    }
    comm.reduce_sum(data.data(), data.size(), 0);
    if (comm.rank() == 0) {
      const double rank_sum = p * (p - 1) / 2.0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_DOUBLE_EQ(data[i], rank_sum + p * static_cast<double>(i) * 10.0);
      }
    }
  });
}

TEST_P(CollectiveTest, AllreduceSum) {
  const int p = GetParam();
  run_cluster(p, [p](Comm& comm) {
    std::vector<double> data(33, static_cast<double>(comm.rank() + 1));
    comm.allreduce_sum(data.data(), data.size());
    const double expect = p * (p + 1) / 2.0;
    for (double v : data) EXPECT_DOUBLE_EQ(v, expect);
  });
}

TEST_P(CollectiveTest, AllgathervVariableBlocks) {
  const int p = GetParam();
  run_cluster(p, [p](Comm& comm) {
    // Rank r contributes r+1 doubles of value r.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      displs[static_cast<std::size_t>(r)] = total;
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(r + 1) * sizeof(double);
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                             static_cast<double>(comm.rank()));
    std::vector<double> all(total / sizeof(double), -1.0);
    comm.allgatherv(mine.data(), mine.size() * sizeof(double), all.data(),
                    counts, displs);
    std::size_t idx = 0;
    for (int r = 0; r < p; ++r) {
      for (int k = 0; k <= r; ++k) {
        EXPECT_DOUBLE_EQ(all[idx++], static_cast<double>(r));
      }
    }
  });
}

TEST_P(CollectiveTest, AlltoallvPersonalized) {
  const int p = GetParam();
  run_cluster(p, [p](Comm& comm) {
    // Rank r sends value 100*r + d to rank d.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p),
                                    sizeof(double));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      displs[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(d) * sizeof(double);
    }
    std::vector<double> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)] = 100.0 * comm.rank() + d;
    }
    std::vector<double> recv(static_cast<std::size_t>(p), -1.0);
    comm.alltoallv(send.data(), counts, displs, recv.data(), counts, displs);
    for (int s = 0; s < p; ++s) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(s)],
                       100.0 * s + comm.rank());
    }
  });
}

TEST_P(CollectiveTest, ConsecutiveCollectivesDoNotInterfere) {
  const int p = GetParam();
  run_cluster(p, [](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      std::vector<double> d(3, 1.0);
      comm.allreduce_sum(d.data(), d.size());
      EXPECT_DOUBLE_EQ(d[0], static_cast<double>(comm.size()));
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// --- algorithm variants -----------------------------------------------------

struct AlgoCase {
  AllreduceAlgorithm allreduce;
  BcastAlgorithm bcast;
  int nranks;
};

class CollectiveAlgorithmTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(CollectiveAlgorithmTest, AllreduceCorrectAndConsistent) {
  const AlgoCase c = GetParam();
  net::ClusterConfig config;
  config.nranks = c.nranks;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(c.nranks));
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(c.nranks));
  CollectiveConfig cc;
  cc.allreduce = c.allreduce;
  cc.bcast = c.bcast;
  sim::Engine engine(c.nranks);
  engine.run([&](sim::RankCtx& ctx) {
    Comm comm(ctx, cluster, recs[static_cast<std::size_t>(ctx.rank())], cc);
    std::vector<double> v(37);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 1.0 / (comm.rank() + 2.0) + 0.001 * static_cast<double>(i);
    }
    comm.allreduce_sum(v.data(), v.size());
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  // Numerically correct...
  double expect0 = 0.0;
  for (int r = 0; r < c.nranks; ++r) expect0 += 1.0 / (r + 2.0);
  EXPECT_NEAR(results[0][0], expect0, 1e-12);
  // ...and bit-identical on every rank (the replicated-data invariant).
  for (int r = 1; r < c.nranks; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
        << "rank " << r;
  }
}

TEST_P(CollectiveAlgorithmTest, BcastDeliversLargePayload) {
  const AlgoCase c = GetParam();
  net::ClusterConfig config;
  config.nranks = c.nranks;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(c.nranks));
  CollectiveConfig cc;
  cc.allreduce = c.allreduce;
  cc.bcast = c.bcast;
  sim::Engine engine(c.nranks);
  engine.run([&](sim::RankCtx& ctx) {
    Comm comm(ctx, cluster, recs[static_cast<std::size_t>(ctx.rank())], cc);
    // Larger than one ring segment, not a multiple of it.
    std::vector<double> v(7013, comm.rank() == 1 ? 2.5 : 0.0);
    comm.bcast(v.data(), v.size() * sizeof(double), 1);
    for (double x : v) ASSERT_DOUBLE_EQ(x, 2.5);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, CollectiveAlgorithmTest,
    ::testing::Values(
        AlgoCase{AllreduceAlgorithm::kReduceBcast,
                 BcastAlgorithm::kBinomialTree, 8},
        AlgoCase{AllreduceAlgorithm::kRecursiveDoubling,
                 BcastAlgorithm::kBinomialTree, 8},
        AlgoCase{AllreduceAlgorithm::kRecursiveDoubling,
                 BcastAlgorithm::kBinomialTree, 6},
        AlgoCase{AllreduceAlgorithm::kRing, BcastAlgorithm::kRingPipeline, 8},
        AlgoCase{AllreduceAlgorithm::kRing, BcastAlgorithm::kRingPipeline, 5},
        AlgoCase{AllreduceAlgorithm::kRing, BcastAlgorithm::kBinomialTree,
                 3}));

// --- rendezvous protocol ----------------------------------------------------

std::vector<perf::RankRecorder> run_rendezvous_cluster(
    int nranks, std::size_t threshold,
    const std::function<void(Comm&)>& body) {
  net::ClusterConfig config;
  config.nranks = nranks;
  config.network = net::Network::kScoreGigE;
  net::NetworkParams params = net::params_for(config.network);
  params.rendezvous_threshold = threshold;
  net::ClusterNetwork cluster(config, params);
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nranks));
  sim::Engine engine(nranks);
  engine.run([&](sim::RankCtx& ctx) {
    Comm comm(ctx, cluster,
              recorders[static_cast<std::size_t>(ctx.rank())]);
    body(comm);
  });
  return recorders;
}

TEST(RendezvousTest, LargeMessageDeliveredCorrectly) {
  run_rendezvous_cluster(2, 1024, [](Comm& comm) {
    std::vector<double> data(1000, 1.5);  // 8000 bytes > threshold
    if (comm.rank() == 0) {
      comm.send(1, 5, data.data(), data.size() * sizeof(double));
    } else {
      std::vector<double> got(1000);
      comm.recv(0, 5, got.data(), got.size() * sizeof(double));
      EXPECT_EQ(got, data);
    }
  });
}

TEST(RendezvousTest, HandshakeAddsRoundTrip) {
  auto elapsed_with = [](std::size_t threshold) {
    double sender_end = 0.0;
    run_rendezvous_cluster(2, threshold, [&](Comm& comm) {
      std::vector<double> data(10000);
      if (comm.rank() == 0) {
        comm.send(1, 5, data.data(), data.size() * sizeof(double));
        sender_end = comm.now();
      } else {
        comm.compute(0.5);  // receiver enters MPI late
        std::vector<double> got(10000);
        comm.recv(0, 5, got.data(), got.size() * sizeof(double));
      }
    });
    return sender_end;
  };
  // Eager: the sender fires and forgets. Rendezvous: it must wait for the
  // receiver to reach the library and answer the RTS.
  const double eager = elapsed_with(0);
  const double rndv = elapsed_with(1024);
  EXPECT_GT(rndv, 0.4);
  EXPECT_LT(eager, 0.1);
}

TEST(RendezvousTest, SymmetricExchangeDoesNotDeadlock) {
  run_rendezvous_cluster(4, 64, [](Comm& comm) {
    // Everyone sends a large message to everyone else simultaneously.
    const int p = comm.size();
    std::vector<double> data(500, static_cast<double>(comm.rank()));
    for (int k = 1; k < p; ++k) {
      comm.send((comm.rank() + k) % p, 9, data.data(),
                data.size() * sizeof(double));
    }
    std::vector<double> got(500);
    for (int k = 1; k < p; ++k) {
      const int src = (comm.rank() - k + p) % p;
      comm.recv(src, 9, got.data(), got.size() * sizeof(double));
      EXPECT_DOUBLE_EQ(got[0], static_cast<double>(src));
    }
  });
}

TEST(RendezvousTest, CollectivesStillCorrect) {
  run_rendezvous_cluster(8, 128, [](Comm& comm) {
    std::vector<double> v(200, 1.0);
    comm.allreduce_sum(v.data(), v.size());
    for (double x : v) ASSERT_DOUBLE_EQ(x, 8.0);
    comm.barrier();
    std::vector<double> b(512, comm.rank() == 2 ? 7.0 : 0.0);
    comm.bcast(b.data(), b.size() * sizeof(double), 2);
    EXPECT_DOUBLE_EQ(b[511], 7.0);
  });
}

TEST(RendezvousTest, SmallMessagesStayEager) {
  auto recs = run_rendezvous_cluster(2, 1 << 20, [](Comm& comm) {
    // Below threshold: no handshake, sender returns immediately.
    double x = 1.0;
    if (comm.rank() == 0) {
      comm.send(1, 3, &x, sizeof(x));
      EXPECT_LT(comm.now(), 1e-3);
    } else {
      comm.compute(0.2);
      comm.recv(0, 3, &x, sizeof(x));
    }
  });
  (void)recs;
}

TEST(RendezvousTest, MalformedClearToSendRejected) {
  // Regression: a corrupt packet on the CTS control tag (null payload)
  // used to be memcpy'd without validation. The protocol layer must
  // reject it instead of dereferencing it.
  run_rendezvous_cluster(2, 1024, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.ctx().checkpoint();
      // Forge a corrupt CTS from rank 1 into our own inbox; the
      // rendezvous send below scans the control channel and must reject
      // it before reading the payload.
      comm.ctx().post(comm.now(), 0,
                      Packet{1, Comm::kCtsTag, MsgBuf{}, 0.0, 0.0});
      std::vector<double> data(1000);
      EXPECT_THROW(
          comm.send(1, 5, data.data(), data.size() * sizeof(double)),
          util::Error);
    }
  });
}

TEST(AccountingTest, SenderBackPressureStallIsSynchronization) {
  // Regression: back-to-back eager 1 MB sends overrun the socket-buffer
  // window, so the sender blocks while the NIC queue drains. That blocked
  // time is control transfer and must land in the sync column — but it
  // elapses inside the send call, so it still counts toward the step's
  // transfer time (the denominator of Figure 7's per-node speed).
  auto recs = run_rendezvous_cluster(2, /*eager=*/0, [](Comm& comm) {
    std::vector<char> big(1 << 20);
    if (comm.rank() == 0) {
      for (int i = 0; i < 6; ++i) comm.send(1, 1, big.data(), big.size());
      comm.recorder().end_step();
    } else {
      for (int i = 0; i < 6; ++i) comm.recv(0, 1, big.data(), big.size());
    }
  });
  const double sync =
      recs[0].time(perf::Component::kOther, perf::Kind::kSync);
  const double comm_t =
      recs[0].time(perf::Component::kOther, perf::Kind::kComm);
  EXPECT_GT(sync, 0.0);  // pre-fix, stalls were booked as communication
  ASSERT_EQ(recs[0].steps().size(), 1u);
  EXPECT_NEAR(recs[0].steps()[0].comm_time, comm_t + sync, 1e-12);
}

TEST(AccountingTest, BytesCountedOnDataOpsOnly) {
  auto recs = run_cluster(2, [](Comm& comm) {
    std::vector<double> d(1000, 1.0);
    comm.allreduce_sum(d.data(), d.size());
    comm.barrier();  // sync traffic must not count as data bytes
  });
  EXPECT_GT(recs[0].total_bytes(), 0.0);
  // Each rank moves ~8000 bytes once or twice; far below 1 MB.
  EXPECT_LT(recs[0].total_bytes(), 1e6);
}

TEST(AccountingTest, SelfSendBooksNoFigure7Bytes) {
  // A self-send is a local copy, not network traffic: neither the send nor
  // the matching receive may contribute to the Figure-7 byte totals.
  auto recs = run_cluster(1, [](Comm& comm) {
    std::vector<double> d(64, 1.0);
    comm.send(0, 3, d.data(), d.size() * sizeof(double));
    std::vector<double> got(64);
    const std::size_t n =
        comm.recv(0, 3, got.data(), got.size() * sizeof(double));
    EXPECT_EQ(n, 64 * sizeof(double));
    EXPECT_EQ(got, d);
  });
  EXPECT_DOUBLE_EQ(recs[0].total_bytes(), 0.0);
}

TEST(AccountingTest, CrossRankBytesSymmetric) {
  // Send and receive sides of a cross-rank transfer book the same bytes.
  auto recs = run_cluster(2, [](Comm& comm) {
    std::vector<unsigned char> buf(128, 7);
    if (comm.rank() == 0) {
      comm.send(1, 9, buf.data(), buf.size());
    } else {
      comm.recv(0, 9, buf.data(), buf.size());
    }
  });
  EXPECT_DOUBLE_EQ(recs[0].total_bytes(), 128.0);
  EXPECT_DOUBLE_EQ(recs[1].total_bytes(), 128.0);
}

TEST(AccountingTest, ComputeChargesActiveComponent) {
  auto recs = run_cluster(1, [](Comm& comm) {
    comm.recorder().set_component(perf::Component::kPme);
    comm.compute(2.5);
    comm.recorder().set_component(perf::Component::kClassic);
    comm.compute(1.0);
  });
  EXPECT_DOUBLE_EQ(recs[0].time(perf::Component::kPme, perf::Kind::kComp),
                   2.5);
  EXPECT_DOUBLE_EQ(
      recs[0].time(perf::Component::kClassic, perf::Kind::kComp), 1.0);
}

}  // namespace
}  // namespace repro::mpi
