// Backend-equivalence suite: the fiber and thread DES backends must be
// observationally identical — same simulated results byte for byte, same
// events_processed / context_switches counters, and the same deadlock and
// abort-teardown behaviour. Only real wall clock may differ.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "perf/metrics.hpp"
#include "sim/engine.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

// The fiber backend cannot run under ThreadSanitizer (TSan does not track
// ucontext switches), so tests that force EngineBackend::kFiber skip
// themselves in TSan builds; the TSan CI leg additionally pins
// REPRO_ENGINE=thread for the rest of the suite.
#if defined(__SANITIZE_THREAD__)
#define REPRO_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define REPRO_TEST_TSAN 1
#endif
#endif

namespace repro {
namespace {

#if defined(REPRO_TEST_TSAN)
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif

const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    charmm::relax_system(s, 60);
    return s;
  }();
  return sys;
}

core::ExperimentResult run_cell(sim::EngineBackend backend) {
  core::ExperimentSpec spec;
  spec.platform.network = net::Network::kTcpGigE;
  spec.platform.middleware = middleware::Kind::kCmpi;
  spec.nprocs = 4;
  spec.charmm.nsteps = 3;
  spec.engine = backend;
  return core::run_experiment(system_fixture(), spec);
}

TEST(EngineBackendTest, SweepCellByteIdenticalAcrossBackends) {
  if (kTsanBuild) GTEST_SKIP() << "fiber backend unsupported under TSan";
  const core::ExperimentResult fiber = run_cell(sim::EngineBackend::kFiber);
  const core::ExperimentResult thread = run_cell(sim::EngineBackend::kThread);

  // The full serialized metrics report — every timing, resource counter
  // and channel statistic — must match byte for byte.
  EXPECT_EQ(perf::metrics_json(fiber.metrics),
            perf::metrics_json(thread.metrics));

  // Engine bookkeeping is defined in simulated terms (events delivered,
  // simulated control handoffs), so it is backend-invariant too.
  EXPECT_EQ(fiber.engine_events, thread.engine_events);
  EXPECT_EQ(fiber.engine_context_switches, thread.engine_context_switches);

  EXPECT_EQ(fiber.position_checksum, thread.position_checksum);
  EXPECT_EQ(fiber.energy.potential(), thread.energy.potential());
  EXPECT_EQ(fiber.pairs_in_list, thread.pairs_in_list);
}

// --- raw-engine equivalence ---------------------------------------------

// A little message workload exercising blocking, wakeups and time-ordered
// delivery; returns a trace that must not depend on the backend.
struct RawTrace {
  std::vector<int> values;
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  bool operator==(const RawTrace&) const = default;
};

RawTrace run_raw(sim::EngineBackend backend) {
  sim::Engine engine(3, backend);
  std::vector<int> values;
  engine.run([&](sim::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.post(1.0, 1, 10);
      ctx.post(2.0, 2, 20);
      ctx.advance(0.5);
      ctx.checkpoint();
    } else {
      while (ctx.inbox().empty()) ctx.block();
      values.push_back(*ctx.inbox().front().payload.get_if<int>());
      ctx.inbox().clear();
    }
  });
  return RawTrace{values, engine.events_processed(),
                  engine.context_switches()};
}

TEST(EngineBackendTest, RawEngineCountersMatch) {
  if (kTsanBuild) GTEST_SKIP() << "fiber backend unsupported under TSan";
  EXPECT_EQ(run_raw(sim::EngineBackend::kFiber),
            run_raw(sim::EngineBackend::kThread));
}

// --- failure paths, on each backend -------------------------------------

class BackendParamTest
    : public ::testing::TestWithParam<sim::EngineBackend> {
 protected:
  void SetUp() override {
    if (kTsanBuild && GetParam() == sim::EngineBackend::kFiber) {
      GTEST_SKIP() << "fiber backend unsupported under TSan";
    }
  }
};

TEST_P(BackendParamTest, DeadlockIsDetectedAndEngineSurvives) {
  sim::Engine engine(2, GetParam());
  EXPECT_THROW(engine.run([&](sim::RankCtx& ctx) {
    ctx.checkpoint();
    ctx.block();  // nobody will ever wake anyone
  }),
               util::Error);

  // Teardown must leave the engine reusable: the rerun sees fresh clocks,
  // no stale events, and statistics of its own.
  int ran = 0;
  engine.run([&](sim::RankCtx& ctx) {
    ctx.advance(1.0);
    ctx.checkpoint();
    if (ctx.rank() == 0) ++ran;
    EXPECT_TRUE(ctx.inbox().empty());
  });
  EXPECT_EQ(ran, 1);
}

TEST_P(BackendParamTest, MidRunErrorAbortsAllRanksAndRerunsClean) {
  sim::Engine engine(3, GetParam());
  EXPECT_THROW(engine.run([&](sim::RankCtx& ctx) {
                 if (ctx.rank() == 1) {
                   ctx.post(ctx.now() + 100.0, 2, 7);
                   throw util::Error("boom");
                 }
                 ctx.advance(1.0);
                 ctx.checkpoint();
                 ctx.block();  // unwound by the abort, not a deadlock
               }),
               util::Error);

  std::vector<int> ran(3, 0);
  engine.run([&](sim::RankCtx& ctx) {
    ctx.advance(200.0);  // past the stale event's delivery time
    ctx.checkpoint();
    ran[static_cast<std::size_t>(ctx.rank())] = 1;
    EXPECT_TRUE(ctx.inbox().empty());
    EXPECT_DOUBLE_EQ(ctx.now(), 200.0);
  });
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(engine.events_processed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendParamTest,
                         ::testing::Values(sim::EngineBackend::kFiber,
                                           sim::EngineBackend::kThread),
                         [](const auto& info) {
                           return std::string(sim::to_string(info.param));
                         });

}  // namespace
}  // namespace repro
