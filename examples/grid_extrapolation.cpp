// Grid extrapolation: the paper's closing point — "the detailed
// performance figures ... allow to derive good estimates about the
// benefits of moving applications to novel computing platforms such as
// widely distributed computers (grid)".
//
// This example sweeps the network latency/bandwidth from SAN-class to
// WAN-class while keeping the workload fixed, and reports where the
// parallel energy calculation stops beating a single processor. It uses
// the lower-level API (custom NetworkParams + hand-assembled run) rather
// than core::run_experiment, demonstrating how to model *any* platform.
#include <cstdio>

#include "charmm/app.hpp"
#include "charmm/simulation.hpp"
#include "perf/report.hpp"
#include "sim/engine.hpp"
#include "sysbuild/builder.hpp"
#include "util/table.hpp"

using namespace repro;
using repro::util::Table;

namespace {

struct PlatformPoint {
  const char* name;
  double latency;    // seconds
  double bandwidth;  // bytes/second
};

perf::RunBreakdown run_on(const sysbuild::BuiltSystem& sys,
                          const net::NetworkParams& params, int nprocs) {
  net::ClusterConfig config;
  config.nranks = nprocs;
  net::ClusterNetwork network(config, params);
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nprocs));
  sim::Engine engine(nprocs);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, network,
                   recorders[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    charmm::CharmmConfig charmm_config;
    charmm::run_charmm_rank(sys, charmm_config, mw);
  });
  return perf::aggregate(recorders, 1);
}

}  // namespace

int main() {
  std::printf("preparing the molecular system...\n");
  sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like();
  charmm::relax_system(sys, 60);

  // From the CoPs cluster to a metropolitan grid: each point keeps the
  // clean SCore-like software stack and degrades only distance/bandwidth,
  // isolating the platform question from protocol artifacts.
  const PlatformPoint points[] = {
      {"SAN (Myrinet-class)", 11e-6, 120e6},
      {"LAN (switched GigE)", 60e-6, 50e6},
      {"campus (routed)", 500e-6, 20e6},
      {"metro grid (~50 km)", 3e-3, 10e6},
      {"wide-area grid", 20e-3, 5e6},
  };

  const perf::RunBreakdown seq =
      run_on(sys, net::params_for(net::Network::kScoreGigE), 1);
  const double seq_total =
      seq.classic_wall.total() + seq.pme_wall.total();
  std::printf("sequential energy calculation: %.2f s (10 MD steps)\n\n",
              seq_total);

  Table table({"platform", "latency", "bandwidth", "procs", "total (s)",
               "speedup"});
  for (const auto& point : points) {
    net::NetworkParams params = net::params_for(net::Network::kScoreGigE);
    params.name = point.name;
    params.latency = point.latency;
    params.bandwidth = point.bandwidth;
    params.send_buffer_time = 256e3 / point.bandwidth;
    for (int p : {4, 8}) {
      const perf::RunBreakdown r = run_on(sys, params, p);
      const double total = r.classic_wall.total() + r.pme_wall.total();
      char lat[32], bw[32];
      std::snprintf(lat, sizeof(lat), "%.0f us", point.latency * 1e6);
      std::snprintf(bw, sizeof(bw), "%.0f MB/s", point.bandwidth / 1e6);
      table.add_row({point.name, lat, bw, std::to_string(p),
                     Table::num(total, 2),
                     Table::num(seq_total / total, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Once latency reaches grid scale the data-parallel energy calculation\n"
      "is slower than a single workstation: on such platforms CHARMM should\n"
      "fall back to task parallelism (many independent calculations), as the\n"
      "paper concludes.\n");
  return 0;
}
