// Cluster scaling: how fast does one CHARMM-style energy calculation get
// as processors are added, on the three cluster interconnects of the
// paper? This drives the full simulated-cluster pipeline through the
// public experiment API and answers the paper's title question.
#include <cstdio>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "sysbuild/builder.hpp"
#include "util/table.hpp"

using namespace repro;
using repro::util::Table;

int main() {
  std::printf("preparing the 3552-atom myoglobin-like system...\n");
  sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like();
  charmm::relax_system(sys, 60);

  Table table({"network", "procs", "total (s)", "speedup", "efficiency"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    double seq = 0.0;
    for (int p : {1, 2, 4, 8, 16}) {
      core::ExperimentSpec spec;
      spec.platform.network = network;
      spec.nprocs = p;
      const core::ExperimentResult r = core::run_experiment(sys, spec);
      if (p == 1) seq = r.total_seconds();
      table.add_row({net::to_string(network), std::to_string(p),
                     Table::num(r.total_seconds(), 2),
                     Table::num(seq / r.total_seconds(), 2),
                     Table::pct(seq / r.total_seconds() / p)});
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "Is there any easy parallelism in CHARMM? On commodity TCP/Ethernet\n"
      "clusters, not much — the classic calculation tolerates a handful of\n"
      "processors, PME suffers immediately. Better communication *software*\n"
      "(SCore) or a system-area network (Myrinet) recovers the scalability.\n");
  return 0;
}
