// Command-line front end for the library — the shape of tool a cluster
// operator would actually run:
//
//   charmm_cluster_cli build-system [--seed N] [--out sys.rsys] [--pdb x.pdb]
//   charmm_cluster_cli run [--system sys.rsys] [--procs P] [--network N]
//                          [--middleware mpi|cmpi] [--cpus 1|2] [--steps S]
//                          [--timeline] [--trace-out=FILE]
//                          [--metrics-out=FILE] [--faults=SPEC]
//   charmm_cluster_cli predict --procs P [--network N]
//   charmm_cluster_cli sweep [--network N] [--middleware M] [--cpus C]
//                            [--jobs N] [--faults=SPEC]
//
// `run` and `sweep` build+relax the paper's system when --system is not
// given. `predict` uses the closed-form LogGP model (no simulation).
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "perf/metrics.hpp"
#include "perf/trace_export.hpp"
#include "perf/power.hpp"
#include "sysbuild/builder.hpp"
#include "sysbuild/io.hpp"
#include "util/kernel.hpp"
#include "util/table.hpp"

using namespace repro;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoi(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    // Both --key value and --key=value are accepted.
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    std::string value = "true";
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

net::Network parse_network(const std::string& name) {
  if (name == "score") return net::Network::kScoreGigE;
  if (name == "myrinet") return net::Network::kMyrinetGM;
  if (name == "faste") return net::Network::kTcpFastEthernet;
  return net::Network::kTcpGigE;
}

sysbuild::BuiltSystem obtain_system(const Args& args) {
  if (args.has("system")) {
    std::printf("loading %s...\n", args.get("system", "").c_str());
    return sysbuild::load_system(args.get("system", ""));
  }
  std::printf("building + relaxing the paper's 3552-atom system...\n");
  sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like(
      static_cast<std::uint64_t>(args.get_int("seed", 2002)));
  charmm::relax_system(sys, args.get_int("relax", 80));
  return sys;
}

void print_result(const core::ExperimentResult& r,
                  const core::ExperimentSpec& spec) {
  std::printf("\n%s, %d processes, %d steps, %s decomposition\n",
              spec.platform.to_string().c_str(), spec.nprocs,
              spec.charmm.nsteps,
              charmm::to_string(spec.charmm.decomp).c_str());
  auto line = [](const char* name, const perf::Breakdown& b) {
    std::printf("  %-10s %7.3f s   comp %5.1f%%  comm %5.1f%%  sync %5.1f%%\n",
                name, b.total(), 100 * b.comp / std::max(b.total(), 1e-12),
                100 * b.comm / std::max(b.total(), 1e-12),
                100 * b.sync / std::max(b.total(), 1e-12));
  };
  line("classic", r.breakdown.classic_wall);
  line("pme", r.breakdown.pme_wall);
  line("total", r.breakdown.total_wall());
  if (r.breakdown.comm_speed.samples > 0) {
    std::printf("  comm speed %.1f MB/s per node [%.1f .. %.1f]\n",
                r.breakdown.comm_speed.avg_mb_per_s,
                r.breakdown.comm_speed.min_mb_per_s,
                r.breakdown.comm_speed.max_mb_per_s);
  }
  std::printf("  potential energy %.2f kcal/mol\n", r.energy.potential());
  if (r.metrics.power.enabled) {
    const perf::PowerMetrics& pw = r.metrics.power;
    std::printf(
        "  energy to solution %.1f J (%d nodes: static %.1f J + "
        "dynamic %.1f J)\n",
        pw.total_joules(), pw.nodes, pw.static_joules, pw.dynamic_joules);
  }
  if (r.atoms_migrated > 0) {
    std::printf("  atoms migrated between domains: %zu\n", r.atoms_migrated);
  }
  if (r.metrics.faults.enabled) {
    const perf::FaultMetrics& f = r.metrics.faults;
    std::printf(
        "  faults: %llu packets lost, %llu retransmits (%.0f bytes), "
        "%.3f s injected\n",
        static_cast<unsigned long long>(f.packets_lost),
        static_cast<unsigned long long>(f.retransmits),
        f.retransmitted_bytes, f.total_delay());
    std::printf(
        "          absorbed by classic %.3f s, pme %.3f s, other %.3f s\n",
        f.absorbed_classic, f.absorbed_pme, f.absorbed_other);
  }
}

int cmd_build_system(const Args& args) {
  sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like(
      static_cast<std::uint64_t>(args.get_int("seed", 2002)));
  if (args.get_int("relax", 80) > 0) {
    const md::MinimizeResult res =
        charmm::relax_system(sys, args.get_int("relax", 80));
    std::printf("relaxed: E %.1f -> %.1f kcal/mol\n", res.initial_energy,
                res.final_energy);
  }
  const std::string out = args.get("out", "myoglobin_like.rsys");
  sysbuild::save_system(out, sys);
  std::printf("wrote %s (%d atoms)\n", out.c_str(), sys.topo.natoms());
  if (args.has("pdb")) {
    sysbuild::save_pdb(args.get("pdb", ""), sys);
    std::printf("wrote %s\n", args.get("pdb", "").c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const sysbuild::BuiltSystem sys = obtain_system(args);
  core::ExperimentSpec spec;
  spec.platform.network = parse_network(args.get("network", "tcp"));
  spec.platform.middleware = args.get("middleware", "mpi") == "cmpi"
                                 ? middleware::Kind::kCmpi
                                 : middleware::Kind::kMpi;
  spec.platform.cpus_per_node = args.get_int("cpus", 1);
  spec.nprocs = args.get_int("procs", 8);
  spec.charmm.nsteps = args.get_int("steps", 10);
  spec.charmm.use_pme = args.get("pme", "on") != "off";
  spec.charmm.decomp = charmm::parse_decomp_spec(args.get("decomp", "atom"));
  if (args.has("kernel")) {
    spec.charmm.kernel = util::parse_kernel_kind(args.get("kernel", ""));
  }
  if (args.has("power")) {
    spec.power = perf::parse_power_spec(args.get("power", ""));
  }
  if (args.has("engine")) {
    spec.engine = sim::parse_engine_backend(args.get("engine", ""));
  }
  if (args.has("faults")) {
    spec.faults = net::parse_fault_spec(args.get("faults", ""));
  }
  if (args.has("topology")) {
    spec.topology = net::parse_topology_spec(args.get("topology", "single"));
  }
  // The Chrome trace needs the per-rank timelines recorded.
  spec.record_timelines = args.has("timeline") || args.has("trace-out");
  const core::ExperimentResult r = core::run_experiment(sys, spec);
  print_result(r, spec);
  if (args.has("timeline")) {
    std::printf("\n%s", perf::render_timelines(r.timelines).c_str());
  }
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "trace.json");
    perf::write_chrome_trace(path, r.timelines,
                             r.metrics.faults.enabled ? &r.metrics.faults
                                                      : nullptr);
    std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                path.c_str());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "metrics.json");
    perf::write_metrics(path, r.metrics);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_predict(const Args& args) {
  const net::NetworkParams params =
      net::params_for(parse_network(args.get("network", "tcp")));
  const int procs = args.get_int("procs", 8);
  const charmm::DecompSpec decomp =
      charmm::parse_decomp_spec(args.get("decomp", "atom"));
  core::OverheadPrediction pred;
  if (decomp.kind == charmm::DecompKind::kSpatial) {
    // Spatial halo volumes are the border-cell populations, so the
    // prediction needs the actual system, not just the atom count.
    const sysbuild::BuiltSystem sys = obtain_system(args);
    charmm::CharmmConfig config;
    config.decomp = decomp;
    pred = core::predict_step_overheads(params, procs, sys, config);
  } else {
    pred = core::predict_step_overheads(params, procs, sysbuild::kTotalAtoms,
                                        pme::PmeParams{80, 36, 48}, decomp);
  }
  std::printf(
      "analytic prediction for %s, %d processes, %s decomposition "
      "(per MD step):\n",
      params.name.c_str(), procs, charmm::to_string(decomp).c_str());
  std::printf("  classic communication : %8.2f ms\n",
              pred.classic_comm_per_step * 1e3);
  std::printf("  pme communication     : %8.2f ms\n",
              pred.pme_comm_per_step * 1e3);
  std::printf("  synchronization       : %8.2f ms\n",
              pred.sync_per_step * 1e3);
  std::printf("  total overhead        : %8.2f ms\n",
              pred.total_per_step() * 1e3);
  std::printf("  schedule: %.0f classic + %.0f pme messages/step, "
              "%.0f + %.0f bytes/step\n",
              pred.classic_messages_per_step, pred.pme_messages_per_step,
              pred.classic_bytes_per_step, pred.pme_bytes_per_step);
  if (pred.run_messages > 0.0) {
    // ldb != off: the replayed balancer trajectory gives whole-run totals
    // (every adopted epoch's per-step schedule + the rebuild events).
    std::printf("  balancer (whole run)  : %.0f messages, %.0f bytes "
                "(%.0f msgs / %.0f B at rebuilds), %.0f units moved\n",
                pred.run_messages, pred.run_bytes, pred.rebalance_messages,
                pred.rebalance_bytes, pred.units_moved);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const sysbuild::BuiltSystem sys = obtain_system(args);
  core::ExperimentSpec base;
  base.platform.network = parse_network(args.get("network", "tcp"));
  base.platform.middleware = args.get("middleware", "mpi") == "cmpi"
                                 ? middleware::Kind::kCmpi
                                 : middleware::Kind::kMpi;
  base.platform.cpus_per_node = args.get_int("cpus", 1);
  base.charmm.decomp = charmm::parse_decomp_spec(args.get("decomp", "atom"));
  if (args.has("kernel")) {
    base.charmm.kernel = util::parse_kernel_kind(args.get("kernel", ""));
  }
  if (args.has("power")) {
    base.power = perf::parse_power_spec(args.get("power", ""));
  }
  if (args.has("engine")) {
    base.engine = sim::parse_engine_backend(args.get("engine", ""));
  }
  if (args.has("faults")) {
    base.faults = net::parse_fault_spec(args.get("faults", ""));
  }
  if (args.has("topology")) {
    base.topology = net::parse_topology_spec(args.get("topology", "single"));
  }

  std::vector<core::ExperimentSpec> specs;
  for (int p : {1, 2, 4, 8, 16}) {
    core::ExperimentSpec spec = base;
    spec.nprocs = p;
    specs.push_back(spec);
  }
  // --jobs=1 preserves the old sequential behaviour; the default (0) uses
  // one worker per hardware thread. Results are identical either way.
  const core::SweepRunner runner(args.get_int("jobs", 0));
  const auto outcomes = runner.run(
      sys, specs,
      [](std::size_t done, std::size_t total, const core::SweepOutcome& cell) {
        std::fprintf(stderr, "[sweep %zu/%zu] %s%s\n", done, total,
                     core::spec_label(cell.spec).c_str(),
                     cell.ok() ? "" : (" FAILED: " + cell.error).c_str());
      });

  util::Table table({"procs", "classic (s)", "pme (s)", "total (s)",
                     "speedup"});
  double seq = 0.0;
  for (const core::SweepOutcome& out : outcomes) {
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s failed: %s\n",
                   core::spec_label(out.spec).c_str(), out.error.c_str());
      return 1;
    }
    const core::ExperimentResult& r = out.result;
    if (out.spec.nprocs == 1) seq = r.total_seconds();
    table.add_row({std::to_string(out.spec.nprocs),
                   util::Table::num(r.classic_seconds(), 2),
                   util::Table::num(r.pme_seconds(), 2),
                   util::Table::num(r.total_seconds(), 2),
                   util::Table::num(seq / r.total_seconds(), 2)});
  }
  std::printf("\n%s on %s:\n%s", base.platform.to_string().c_str(),
              "the paper's workload", table.to_string().c_str());
  return 0;
}

void usage() {
  std::printf(
      "usage: charmm_cluster_cli <command> [options]\n"
      "commands:\n"
      "  build-system  [--seed N] [--relax STEPS] [--out F.rsys] [--pdb F]\n"
      "  run           [--system F.rsys] [--procs P] [--network "
      "tcp|score|myrinet|faste]\n"
      "                [--middleware mpi|cmpi] [--cpus 1|2] [--steps S]\n"
      "                [--pme on|off]\n"
      "                [--decomp atom|force|task[:pme=N]|\n"
      "                    spatial[:grid=AxBxC][:pme=pencil[:grid=PyxPz]]\n"
      "                    [:ldb=greedy|refine|off[,units=K]]]\n"
      "                [--engine fiber|thread]  DES backend (default fiber,\n"
      "                    or $REPRO_ENGINE; results identical either way)\n"
      "                [--kernel scalar|simd]  physics kernel variant\n"
      "                    (default scalar, or $REPRO_KERNEL; identical\n"
      "                    simulated results, host wall clock differs)\n"
      "                [--power=SPEC]  energy-to-solution model, e.g.\n"
      "                    'static=55,dynamic=25,phase:pme_recip=18' (watts)\n"
      "                [--timeline]\n"
      "                [--trace-out=F.json]    Chrome trace (Perfetto)\n"
      "                [--metrics-out=F.json]  resource-utilization report\n"
      "                [--faults=SPEC]         fault injection "
      "(docs/FAULTS.md), e.g.\n"
      "                    "
      "'loss=0.01,recovery=timeout;straggler=0,x=1.5;stall=1,at=0.5,dur=0.2'"
      "\n"
      "                [--topology=SPEC]       fabric between nodes:\n"
      "                    single (default) | "
      "fattree[:radix=N][,over=F] | torus[:x=N][,y=N][,z=N]\n"
      "  predict       [--procs P] [--network ...] [--decomp D]   "
      "(closed-form model;\n"
      "                    spatial builds the system to derive its halo "
      "schedule)\n"
      "  sweep         [--system F.rsys] [--network ...] [--middleware ...]"
      " [--cpus C]\n"
      "                [--decomp atom|force|task[:pme=N]|\n"
      "                    spatial[:grid=AxBxC][:pme=pencil[:grid=PyxPz]]\n"
      "                    [:ldb=greedy|refine|off[,units=K]]]\n"
      "                [--jobs N]  concurrent cells (default: hardware "
      "threads; 1 = sequential)\n"
      "                [--engine fiber|thread]  DES backend per cell\n"
      "                [--kernel scalar|simd]  physics kernel per cell\n"
      "                [--power=SPEC]  energy model for every cell\n"
      "                [--faults=SPEC]  fault injection for every cell\n"
      "                [--topology=SPEC]  fabric for every cell "
      "(single|fattree|torus)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "build-system") return cmd_build_system(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "sweep") return cmd_sweep(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return args.command.empty() ? 0 : 1;
}
