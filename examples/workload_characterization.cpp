// Workload characterization: the paper's §3 methodology as a reusable
// tool. For a chosen platform configuration it reports, per component of
// the energy calculation, the computation / communication /
// synchronization split, per-node communication speed statistics, and the
// factor-space position — everything needed to "derive good estimates
// about the benefits of moving applications to novel computing platforms".
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "sysbuild/builder.hpp"

using namespace repro;

namespace {

void report(const core::ExperimentResult& r, const core::ExperimentSpec& spec) {
  std::printf("\nplatform : %s\n", spec.platform.to_string().c_str());
  std::printf("processes: %d   (MD steps: %d, atoms: %d, pairs in list: %zu)\n",
              spec.nprocs, spec.charmm.nsteps, sysbuild::kTotalAtoms,
              r.pairs_in_list);

  auto line = [](const char* name, const perf::Breakdown& b) {
    const double t = b.total();
    std::printf("  %-18s %7.3f s   comp %6.1f%%  comm %6.1f%%  sync %6.1f%%\n",
                name, t, t > 0 ? 100 * b.comp / t : 0,
                t > 0 ? 100 * b.comm / t : 0, t > 0 ? 100 * b.sync / t : 0);
  };
  std::printf("component breakdown (slowest rank):\n");
  line("classic calc", r.breakdown.classic_wall);
  line("pme calc", r.breakdown.pme_wall);
  line("total energy calc", r.breakdown.total_wall());

  if (r.breakdown.comm_speed.samples > 0) {
    std::printf("per-node communication speed: avg %.1f MB/s  "
                "[min %.1f, max %.1f] over %zu node-step samples\n",
                r.breakdown.comm_speed.avg_mb_per_s,
                r.breakdown.comm_speed.min_mb_per_s,
                r.breakdown.comm_speed.max_mb_per_s,
                r.breakdown.comm_speed.samples);
  }
  std::printf("final potential energy: %.2f kcal/mol (bit-identical on all "
              "ranks)\n",
              r.energy.potential());
}

}  // namespace

int main(int argc, char** argv) {
  // Optional: <procs> <tcp|score|myrinet> <mpi|cmpi> <uni|dual>
  core::ExperimentSpec spec;
  spec.nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  if (argc > 2) {
    if (std::strcmp(argv[2], "score") == 0) {
      spec.platform.network = net::Network::kScoreGigE;
    } else if (std::strcmp(argv[2], "myrinet") == 0) {
      spec.platform.network = net::Network::kMyrinetGM;
    }
  }
  if (argc > 3 && std::strcmp(argv[3], "cmpi") == 0) {
    spec.platform.middleware = middleware::Kind::kCmpi;
  }
  if (argc > 4 && std::strcmp(argv[4], "dual") == 0) {
    spec.platform.cpus_per_node = 2;
  }

  std::printf("preparing the molecular system...\n");
  sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like();
  charmm::relax_system(sys, 60);

  // Characterize the requested configuration plus the sequential baseline.
  core::ExperimentSpec baseline = spec;
  baseline.nprocs = 1;
  report(core::run_experiment(sys, baseline), baseline);
  spec.record_timelines = true;
  const core::ExperimentResult r = core::run_experiment(sys, spec);
  report(r, spec);

  // A window over the middle of the run shows where each rank spends its
  // time (the visual form of the comp/comm/sync decomposition).
  if (!r.timelines.empty()) {
    perf::RenderOptions window;
    double span = 0.0;
    for (const auto& t : r.timelines) span = std::max(span, t.span_end());
    window.begin = span * 0.45;
    window.end = span * 0.65;
    window.columns = 96;
    std::printf("\ntimeline window (two MD steps or so):\n%s",
                perf::render_timelines(r.timelines, window).c_str());
  }

  const double seq =
      core::run_experiment(sys, baseline).total_seconds();
  std::printf("\nspeedup vs one processor: %.2fx (efficiency %.0f%%)\n",
              seq / r.total_seconds(),
              100.0 * seq / r.total_seconds() / spec.nprocs);
  return 0;
}
