// Trajectory analysis: run a short solvent simulation, write a trajectory,
// then read it back and compute the standard observables — O-O radial
// distribution function, mean-squared displacement, and the system's
// radius of gyration over time.
#include <cstdio>
#include <filesystem>

#include "charmm/simulation.hpp"
#include "md/analysis.hpp"
#include "md/trajectory.hpp"
#include "sysbuild/builder.hpp"

using namespace repro;

int main() {
  sysbuild::BuiltSystem water = sysbuild::build_water_box(5);
  std::printf("system: %d atoms (%zu waters), box %.1f A\n",
              water.topo.natoms(),
              md::select_water_oxygens(water.topo).size(), water.box.lx());

  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{16, 16, 16, 4, 0.5};
  config.cutoff = 6.5;
  config.switch_on = 5.5;
  config.dt_ps = 0.002;
  config.rigid_waters = true;
  config.thermostat = charmm::SimulationConfig::Thermostat::kLangevin;
  config.thermostat_target_k = 300.0;

  charmm::Simulation sim(water, config);
  md::MinimizeOptions min_opts;
  min_opts.max_steps = 40;
  sim.minimize(min_opts);
  sim.set_velocities_from_temperature(300.0, 31);

  const std::string path =
      (std::filesystem::temp_directory_path() / "analysis_demo.rtrj")
          .string();
  {
    md::TrajectoryWriter writer(path, water.topo.natoms(), water.box,
                                20 * config.dt_ps);
    for (int frame = 0; frame < 12; ++frame) {
      sim.step(20);
      writer.write_frame(sim.positions());
    }
  }

  md::TrajectoryReader reader(path);
  std::printf("trajectory: %d frames, %.3f ps apart\n\n", reader.nframes(),
              reader.dt_ps());

  // O-O radial distribution function, averaged over the last frames.
  const auto oxygens = md::select_water_oxygens(water.topo);
  std::vector<util::Vec3> frame;
  std::vector<double> g_acc;
  std::vector<double> r_axis;
  int averaged = 0;
  for (int f = reader.nframes() / 2; f < reader.nframes(); ++f) {
    reader.read_frame(f, frame);
    const md::RdfResult rdf = md::radial_distribution(
        water.box, frame, oxygens, oxygens, 6.0, 30);
    if (g_acc.empty()) {
      g_acc.assign(rdf.g.size(), 0.0);
      r_axis = rdf.r;
    }
    for (std::size_t b = 0; b < rdf.g.size(); ++b) g_acc[b] += rdf.g[b];
    ++averaged;
  }
  std::printf("O-O radial distribution function (averaged over %d frames):\n",
              averaged);
  std::printf("%6s  %6s  %s\n", "r (A)", "g(r)", "profile");
  for (std::size_t b = 4; b < g_acc.size(); ++b) {
    const double g = g_acc[b] / averaged;
    std::string bar(static_cast<std::size_t>(std::min(g, 4.0) * 15.0), '*');
    std::printf("%6.2f  %6.2f  %s\n", r_axis[b], g, bar.c_str());
  }

  // Mean-squared displacement of the oxygens vs the first stored frame.
  std::vector<util::Vec3> frame0;
  reader.read_frame(0, frame0);
  std::printf("\nMSD of water oxygens vs frame 0:\n");
  for (int f = 1; f < reader.nframes(); f += 2) {
    reader.read_frame(f, frame);
    std::printf("  t = %5.3f ps   msd = %7.4f A^2\n", f * reader.dt_ps(),
                md::mean_squared_displacement(frame0, frame, oxygens));
  }

  std::filesystem::remove(path);
  std::printf("\nThe first g(r) peak near 2.8 A is the hydrogen-bonded\n"
              "first solvation shell; the rising MSD shows the liquid is\n"
              "diffusing — the trajectory machinery end to end.\n");
  return 0;
}
