// Quickstart: build a molecular system, evaluate its energy, minimize,
// and run a few steps of NVE molecular dynamics with PME electrostatics —
// the sequential MD engine in a dozen lines.
#include <cstdio>

#include "charmm/simulation.hpp"
#include "sysbuild/builder.hpp"

using namespace repro;

int main() {
  // A 4x4x4 lattice of TIP3P-like waters (192 atoms) at bulk density.
  sysbuild::BuiltSystem water = sysbuild::build_water_box(4);
  std::printf("system: %s, %d atoms, box %.1f x %.1f x %.1f A\n",
              water.name.c_str(), water.topo.natoms(), water.box.lx(),
              water.box.ly(), water.box.lz());

  charmm::SimulationConfig config;
  config.use_pme = true;
  config.pme = pme::PmeParams{16, 16, 16, 4, 0.6};
  config.cutoff = 5.5;
  config.switch_on = 4.5;
  config.dt_ps = 0.0005;  // 0.5 fs

  charmm::Simulation sim(water, config);
  const md::EnergyTerms& e0 = sim.evaluate();
  std::printf("initial potential energy: %.2f kcal/mol\n", e0.potential());
  std::printf("  bond %.2f  angle %.2f  LJ %.2f  elec(direct) %.2f\n",
              e0.bond, e0.angle, e0.lj, e0.elec);
  std::printf("  ewald: recip %.2f  self %.2f  excl %.2f\n", e0.ewald_recip,
              e0.ewald_self, e0.ewald_excl);

  // Relax the lattice a little, then heat to 300 K.
  md::MinimizeOptions min_opts;
  min_opts.max_steps = 25;
  const md::MinimizeResult min_res = sim.minimize(min_opts);
  std::printf("minimized %d steps: %.2f -> %.2f kcal/mol\n", min_res.steps,
              min_res.initial_energy, min_res.final_energy);

  sim.set_velocities_from_temperature(300.0, /*seed=*/42);
  sim.evaluate();

  std::printf("\n%6s %14s %14s %14s %10s\n", "step", "potential", "kinetic",
              "total", "temp (K)");
  const double e_start = sim.total_energy();
  for (int block = 0; block <= 5; ++block) {
    if (block > 0) sim.step(10);
    std::printf("%6d %14.3f %14.3f %14.3f %10.1f\n", block * 10,
                sim.energy().potential(), sim.kinetic_energy(),
                sim.total_energy(),
                md::temperature(water.topo, sim.velocities()));
  }
  std::printf("\nNVE drift over 50 steps: %.4f%%\n",
              100.0 * (sim.total_energy() - e_start) / std::abs(e_start));
  return 0;
}
