// Production-style MD workflow: minimize, heat with a thermostat,
// equilibrate with SHAKE-constrained hydrogens at a 2 fs step, switch to
// NVE, and write a trajectory — the CHARMM usage pattern the paper's
// research groups ran (many such calculations in parallel), assembled
// from this library's pieces.
#include <cstdio>
#include <filesystem>

#include "charmm/simulation.hpp"
#include "md/trajectory.hpp"
#include "sysbuild/builder.hpp"
#include "sysbuild/io.hpp"

using namespace repro;

int main() {
  // A solvent box keeps the example fast; swap in
  // sysbuild::build_myoglobin_like() for the paper's system.
  sysbuild::BuiltSystem sys = sysbuild::build_water_box(4);
  std::printf("system: %d atoms in a %.1f A box\n", sys.topo.natoms(),
              sys.box.lx());

  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{16, 16, 16, 4, 0.6};
  config.cutoff = 5.5;
  config.switch_on = 4.5;
  config.dt_ps = 0.002;  // 2 fs — possible because of SHAKE below
  config.rigid_waters = true;  // fully rigid TIP3P-style solvent
  config.thermostat = charmm::SimulationConfig::Thermostat::kLangevin;
  config.thermostat_target_k = 300.0;
  config.langevin_friction_per_ps = 5.0;

  charmm::Simulation sim(sys, config);
  std::printf("SHAKE constraints: %zu (rigid waters), dof: %d\n",
              sim.shake()->size(), sim.degrees_of_freedom());

  // 1. Minimize.
  md::MinimizeOptions min_opts;
  min_opts.max_steps = 50;
  const md::MinimizeResult min_res = sim.minimize(min_opts);
  std::printf("minimize : %4d steps, E %.1f -> %.1f kcal/mol\n",
              min_res.steps, min_res.initial_energy, min_res.final_energy);

  // 2. Heat + equilibrate under the Langevin thermostat.
  sim.set_velocities_from_temperature(100.0, 17);
  for (int block = 0; block < 5; ++block) {
    sim.step(20);
    std::printf("heat     : step %3d  T = %6.1f K  E_pot = %9.2f\n",
                (block + 1) * 20, sim.current_temperature(),
                sim.energy().potential());
  }

  // 3. Production: NVE with a trajectory file.
  charmm::SimulationConfig nve = config;
  nve.thermostat = charmm::SimulationConfig::Thermostat::kNone;
  charmm::Simulation prod(sys, nve);
  prod.positions() = sim.positions();
  prod.set_velocities_from_temperature(300.0, 23);
  prod.evaluate();

  const std::string traj_path =
      (std::filesystem::temp_directory_path() / "production_md.rtrj")
          .string();
  md::TrajectoryWriter writer(traj_path, sys.topo.natoms(), sys.box,
                              10 * config.dt_ps);
  // Let the fresh velocities equilibrate for a few steps before measuring
  // conservation (the first RATTLE projection and the potential/kinetic
  // exchange of a restart are one-time transients).
  prod.step(20);
  const double e0 = prod.total_energy();
  for (int frame = 0; frame < 10; ++frame) {
    prod.step(10);
    writer.write_frame(prod.positions());
  }
  writer.flush();
  std::printf("\nproduction: 100 steps at 2 fs, NVE drift %.3f%%, "
              "constraint violation %.1e\n",
              100.0 * (prod.total_energy() - e0) / std::abs(e0),
              prod.shake()->max_violation(sys.box, prod.positions()));

  md::TrajectoryReader reader(traj_path);
  std::printf("trajectory: %d frames of %d atoms at %s\n", reader.nframes(),
              reader.natoms(), traj_path.c_str());

  // 4. Export the final system for reuse.
  const std::string sys_path =
      (std::filesystem::temp_directory_path() / "production_md_final.rsys")
          .string();
  sys.positions = prod.positions();
  sysbuild::save_system(sys_path, sys);
  std::printf("final structure saved to %s\n", sys_path.c_str());
  return 0;
}
