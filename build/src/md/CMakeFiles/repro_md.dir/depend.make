# Empty dependencies file for repro_md.
# This may be replaced when dependencies are built.
