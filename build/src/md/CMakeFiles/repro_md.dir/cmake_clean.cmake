file(REMOVE_RECURSE
  "CMakeFiles/repro_md.dir/analysis.cpp.o"
  "CMakeFiles/repro_md.dir/analysis.cpp.o.d"
  "CMakeFiles/repro_md.dir/bonded.cpp.o"
  "CMakeFiles/repro_md.dir/bonded.cpp.o.d"
  "CMakeFiles/repro_md.dir/constraints.cpp.o"
  "CMakeFiles/repro_md.dir/constraints.cpp.o.d"
  "CMakeFiles/repro_md.dir/integrator.cpp.o"
  "CMakeFiles/repro_md.dir/integrator.cpp.o.d"
  "CMakeFiles/repro_md.dir/minimize.cpp.o"
  "CMakeFiles/repro_md.dir/minimize.cpp.o.d"
  "CMakeFiles/repro_md.dir/neighbor.cpp.o"
  "CMakeFiles/repro_md.dir/neighbor.cpp.o.d"
  "CMakeFiles/repro_md.dir/nonbonded.cpp.o"
  "CMakeFiles/repro_md.dir/nonbonded.cpp.o.d"
  "CMakeFiles/repro_md.dir/thermostat.cpp.o"
  "CMakeFiles/repro_md.dir/thermostat.cpp.o.d"
  "CMakeFiles/repro_md.dir/topology.cpp.o"
  "CMakeFiles/repro_md.dir/topology.cpp.o.d"
  "CMakeFiles/repro_md.dir/trajectory.cpp.o"
  "CMakeFiles/repro_md.dir/trajectory.cpp.o.d"
  "librepro_md.a"
  "librepro_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
