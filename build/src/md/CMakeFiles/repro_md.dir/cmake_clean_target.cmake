file(REMOVE_RECURSE
  "librepro_md.a"
)
