
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cpp" "src/md/CMakeFiles/repro_md.dir/analysis.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/analysis.cpp.o.d"
  "/root/repo/src/md/bonded.cpp" "src/md/CMakeFiles/repro_md.dir/bonded.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/bonded.cpp.o.d"
  "/root/repo/src/md/constraints.cpp" "src/md/CMakeFiles/repro_md.dir/constraints.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/constraints.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/repro_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/minimize.cpp" "src/md/CMakeFiles/repro_md.dir/minimize.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/minimize.cpp.o.d"
  "/root/repo/src/md/neighbor.cpp" "src/md/CMakeFiles/repro_md.dir/neighbor.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/neighbor.cpp.o.d"
  "/root/repo/src/md/nonbonded.cpp" "src/md/CMakeFiles/repro_md.dir/nonbonded.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/nonbonded.cpp.o.d"
  "/root/repo/src/md/thermostat.cpp" "src/md/CMakeFiles/repro_md.dir/thermostat.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/thermostat.cpp.o.d"
  "/root/repo/src/md/topology.cpp" "src/md/CMakeFiles/repro_md.dir/topology.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/topology.cpp.o.d"
  "/root/repo/src/md/trajectory.cpp" "src/md/CMakeFiles/repro_md.dir/trajectory.cpp.o" "gcc" "src/md/CMakeFiles/repro_md.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
