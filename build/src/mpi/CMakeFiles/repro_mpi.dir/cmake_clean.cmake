file(REMOVE_RECURSE
  "CMakeFiles/repro_mpi.dir/comm.cpp.o"
  "CMakeFiles/repro_mpi.dir/comm.cpp.o.d"
  "librepro_mpi.a"
  "librepro_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
