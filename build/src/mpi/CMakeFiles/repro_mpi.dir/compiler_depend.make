# Empty compiler generated dependencies file for repro_mpi.
# This may be replaced when dependencies are built.
