file(REMOVE_RECURSE
  "librepro_mpi.a"
)
