file(REMOVE_RECURSE
  "CMakeFiles/repro_sysbuild.dir/builder.cpp.o"
  "CMakeFiles/repro_sysbuild.dir/builder.cpp.o.d"
  "CMakeFiles/repro_sysbuild.dir/io.cpp.o"
  "CMakeFiles/repro_sysbuild.dir/io.cpp.o.d"
  "librepro_sysbuild.a"
  "librepro_sysbuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sysbuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
