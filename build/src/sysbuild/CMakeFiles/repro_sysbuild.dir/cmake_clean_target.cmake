file(REMOVE_RECURSE
  "librepro_sysbuild.a"
)
