
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysbuild/builder.cpp" "src/sysbuild/CMakeFiles/repro_sysbuild.dir/builder.cpp.o" "gcc" "src/sysbuild/CMakeFiles/repro_sysbuild.dir/builder.cpp.o.d"
  "/root/repo/src/sysbuild/io.cpp" "src/sysbuild/CMakeFiles/repro_sysbuild.dir/io.cpp.o" "gcc" "src/sysbuild/CMakeFiles/repro_sysbuild.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/repro_md.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
