# Empty compiler generated dependencies file for repro_sysbuild.
# This may be replaced when dependencies are built.
