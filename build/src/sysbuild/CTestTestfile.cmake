# CMake generated Testfile for 
# Source directory: /root/repo/src/sysbuild
# Build directory: /root/repo/build/src/sysbuild
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
