file(REMOVE_RECURSE
  "CMakeFiles/repro_sim.dir/engine.cpp.o"
  "CMakeFiles/repro_sim.dir/engine.cpp.o.d"
  "librepro_sim.a"
  "librepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
