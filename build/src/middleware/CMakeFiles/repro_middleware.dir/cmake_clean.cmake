file(REMOVE_RECURSE
  "CMakeFiles/repro_middleware.dir/middleware.cpp.o"
  "CMakeFiles/repro_middleware.dir/middleware.cpp.o.d"
  "librepro_middleware.a"
  "librepro_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
