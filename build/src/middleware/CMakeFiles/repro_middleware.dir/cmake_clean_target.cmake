file(REMOVE_RECURSE
  "librepro_middleware.a"
)
