# Empty dependencies file for repro_middleware.
# This may be replaced when dependencies are built.
