file(REMOVE_RECURSE
  "CMakeFiles/repro_net.dir/cluster.cpp.o"
  "CMakeFiles/repro_net.dir/cluster.cpp.o.d"
  "CMakeFiles/repro_net.dir/models.cpp.o"
  "CMakeFiles/repro_net.dir/models.cpp.o.d"
  "librepro_net.a"
  "librepro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
