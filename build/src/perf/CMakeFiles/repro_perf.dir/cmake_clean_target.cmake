file(REMOVE_RECURSE
  "librepro_perf.a"
)
