file(REMOVE_RECURSE
  "CMakeFiles/repro_perf.dir/report.cpp.o"
  "CMakeFiles/repro_perf.dir/report.cpp.o.d"
  "CMakeFiles/repro_perf.dir/timeline.cpp.o"
  "CMakeFiles/repro_perf.dir/timeline.cpp.o.d"
  "librepro_perf.a"
  "librepro_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
