# Empty dependencies file for repro_perf.
# This may be replaced when dependencies are built.
