file(REMOVE_RECURSE
  "CMakeFiles/repro_fft.dir/fft.cpp.o"
  "CMakeFiles/repro_fft.dir/fft.cpp.o.d"
  "CMakeFiles/repro_fft.dir/parallel_fft.cpp.o"
  "CMakeFiles/repro_fft.dir/parallel_fft.cpp.o.d"
  "librepro_fft.a"
  "librepro_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
