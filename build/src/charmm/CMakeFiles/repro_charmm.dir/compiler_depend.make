# Empty compiler generated dependencies file for repro_charmm.
# This may be replaced when dependencies are built.
