file(REMOVE_RECURSE
  "librepro_charmm.a"
)
