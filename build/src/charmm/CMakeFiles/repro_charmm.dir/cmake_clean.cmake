file(REMOVE_RECURSE
  "CMakeFiles/repro_charmm.dir/app.cpp.o"
  "CMakeFiles/repro_charmm.dir/app.cpp.o.d"
  "CMakeFiles/repro_charmm.dir/cost_model.cpp.o"
  "CMakeFiles/repro_charmm.dir/cost_model.cpp.o.d"
  "CMakeFiles/repro_charmm.dir/simulation.cpp.o"
  "CMakeFiles/repro_charmm.dir/simulation.cpp.o.d"
  "librepro_charmm.a"
  "librepro_charmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_charmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
