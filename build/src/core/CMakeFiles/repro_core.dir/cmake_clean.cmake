file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/experiment.cpp.o"
  "CMakeFiles/repro_core.dir/experiment.cpp.o.d"
  "CMakeFiles/repro_core.dir/factorial.cpp.o"
  "CMakeFiles/repro_core.dir/factorial.cpp.o.d"
  "CMakeFiles/repro_core.dir/model.cpp.o"
  "CMakeFiles/repro_core.dir/model.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
