# Empty dependencies file for repro_pme.
# This may be replaced when dependencies are built.
