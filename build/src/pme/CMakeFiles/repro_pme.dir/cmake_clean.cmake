file(REMOVE_RECURSE
  "CMakeFiles/repro_pme.dir/bspline.cpp.o"
  "CMakeFiles/repro_pme.dir/bspline.cpp.o.d"
  "CMakeFiles/repro_pme.dir/ewald_ref.cpp.o"
  "CMakeFiles/repro_pme.dir/ewald_ref.cpp.o.d"
  "CMakeFiles/repro_pme.dir/pme.cpp.o"
  "CMakeFiles/repro_pme.dir/pme.cpp.o.d"
  "librepro_pme.a"
  "librepro_pme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
