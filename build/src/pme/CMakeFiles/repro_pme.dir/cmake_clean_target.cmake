file(REMOVE_RECURSE
  "librepro_pme.a"
)
