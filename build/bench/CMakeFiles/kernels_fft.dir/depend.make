# Empty dependencies file for kernels_fft.
# This may be replaced when dependencies are built.
