file(REMOVE_RECURSE
  "CMakeFiles/kernels_fft.dir/kernels_fft.cpp.o"
  "CMakeFiles/kernels_fft.dir/kernels_fft.cpp.o.d"
  "kernels_fft"
  "kernels_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
