# Empty dependencies file for full_factorial.
# This may be replaced when dependencies are built.
