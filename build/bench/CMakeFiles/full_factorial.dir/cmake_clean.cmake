file(REMOVE_RECURSE
  "CMakeFiles/full_factorial.dir/full_factorial.cpp.o"
  "CMakeFiles/full_factorial.dir/full_factorial.cpp.o.d"
  "full_factorial"
  "full_factorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_factorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
