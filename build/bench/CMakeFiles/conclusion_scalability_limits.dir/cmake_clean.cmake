file(REMOVE_RECURSE
  "CMakeFiles/conclusion_scalability_limits.dir/conclusion_scalability_limits.cpp.o"
  "CMakeFiles/conclusion_scalability_limits.dir/conclusion_scalability_limits.cpp.o.d"
  "conclusion_scalability_limits"
  "conclusion_scalability_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conclusion_scalability_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
