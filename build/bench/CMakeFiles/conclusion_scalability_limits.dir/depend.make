# Empty dependencies file for conclusion_scalability_limits.
# This may be replaced when dependencies are built.
