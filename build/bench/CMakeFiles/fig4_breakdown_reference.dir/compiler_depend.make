# Empty compiler generated dependencies file for fig4_breakdown_reference.
# This may be replaced when dependencies are built.
