file(REMOVE_RECURSE
  "CMakeFiles/fig4_breakdown_reference.dir/fig4_breakdown_reference.cpp.o"
  "CMakeFiles/fig4_breakdown_reference.dir/fig4_breakdown_reference.cpp.o.d"
  "fig4_breakdown_reference"
  "fig4_breakdown_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_breakdown_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
