file(REMOVE_RECURSE
  "CMakeFiles/kernels_pme.dir/kernels_pme.cpp.o"
  "CMakeFiles/kernels_pme.dir/kernels_pme.cpp.o.d"
  "kernels_pme"
  "kernels_pme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_pme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
