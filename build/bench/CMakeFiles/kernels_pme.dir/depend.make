# Empty dependencies file for kernels_pme.
# This may be replaced when dependencies are built.
