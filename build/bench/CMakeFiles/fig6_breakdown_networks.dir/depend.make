# Empty dependencies file for fig6_breakdown_networks.
# This may be replaced when dependencies are built.
