file(REMOVE_RECURSE
  "CMakeFiles/fig6_breakdown_networks.dir/fig6_breakdown_networks.cpp.o"
  "CMakeFiles/fig6_breakdown_networks.dir/fig6_breakdown_networks.cpp.o.d"
  "fig6_breakdown_networks"
  "fig6_breakdown_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_breakdown_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
