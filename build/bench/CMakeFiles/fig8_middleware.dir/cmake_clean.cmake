file(REMOVE_RECURSE
  "CMakeFiles/fig8_middleware.dir/fig8_middleware.cpp.o"
  "CMakeFiles/fig8_middleware.dir/fig8_middleware.cpp.o.d"
  "fig8_middleware"
  "fig8_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
