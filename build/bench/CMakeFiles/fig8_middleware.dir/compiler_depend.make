# Empty compiler generated dependencies file for fig8_middleware.
# This may be replaced when dependencies are built.
