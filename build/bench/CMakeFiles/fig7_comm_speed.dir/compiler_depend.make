# Empty compiler generated dependencies file for fig7_comm_speed.
# This may be replaced when dependencies are built.
