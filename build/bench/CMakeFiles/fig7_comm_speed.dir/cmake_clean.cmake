file(REMOVE_RECURSE
  "CMakeFiles/fig7_comm_speed.dir/fig7_comm_speed.cpp.o"
  "CMakeFiles/fig7_comm_speed.dir/fig7_comm_speed.cpp.o.d"
  "fig7_comm_speed"
  "fig7_comm_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comm_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
