# Empty compiler generated dependencies file for fig3_reference_case.
# This may be replaced when dependencies are built.
