file(REMOVE_RECURSE
  "CMakeFiles/fig3_reference_case.dir/fig3_reference_case.cpp.o"
  "CMakeFiles/fig3_reference_case.dir/fig3_reference_case.cpp.o.d"
  "fig3_reference_case"
  "fig3_reference_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_reference_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
