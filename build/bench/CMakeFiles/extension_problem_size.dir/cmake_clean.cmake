file(REMOVE_RECURSE
  "CMakeFiles/extension_problem_size.dir/extension_problem_size.cpp.o"
  "CMakeFiles/extension_problem_size.dir/extension_problem_size.cpp.o.d"
  "extension_problem_size"
  "extension_problem_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
