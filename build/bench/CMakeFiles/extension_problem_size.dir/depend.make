# Empty dependencies file for extension_problem_size.
# This may be replaced when dependencies are built.
