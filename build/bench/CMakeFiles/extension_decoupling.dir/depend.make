# Empty dependencies file for extension_decoupling.
# This may be replaced when dependencies are built.
