file(REMOVE_RECURSE
  "CMakeFiles/extension_decoupling.dir/extension_decoupling.cpp.o"
  "CMakeFiles/extension_decoupling.dir/extension_decoupling.cpp.o.d"
  "extension_decoupling"
  "extension_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
