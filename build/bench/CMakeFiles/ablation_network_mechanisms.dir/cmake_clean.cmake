file(REMOVE_RECURSE
  "CMakeFiles/ablation_network_mechanisms.dir/ablation_network_mechanisms.cpp.o"
  "CMakeFiles/ablation_network_mechanisms.dir/ablation_network_mechanisms.cpp.o.d"
  "ablation_network_mechanisms"
  "ablation_network_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
