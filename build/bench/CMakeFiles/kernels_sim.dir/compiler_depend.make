# Empty compiler generated dependencies file for kernels_sim.
# This may be replaced when dependencies are built.
