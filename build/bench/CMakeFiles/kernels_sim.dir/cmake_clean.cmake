file(REMOVE_RECURSE
  "CMakeFiles/kernels_sim.dir/kernels_sim.cpp.o"
  "CMakeFiles/kernels_sim.dir/kernels_sim.cpp.o.d"
  "kernels_sim"
  "kernels_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
