# Empty compiler generated dependencies file for fig5_networks.
# This may be replaced when dependencies are built.
