file(REMOVE_RECURSE
  "CMakeFiles/fig5_networks.dir/fig5_networks.cpp.o"
  "CMakeFiles/fig5_networks.dir/fig5_networks.cpp.o.d"
  "fig5_networks"
  "fig5_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
