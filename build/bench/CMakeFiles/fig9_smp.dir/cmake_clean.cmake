file(REMOVE_RECURSE
  "CMakeFiles/fig9_smp.dir/fig9_smp.cpp.o"
  "CMakeFiles/fig9_smp.dir/fig9_smp.cpp.o.d"
  "fig9_smp"
  "fig9_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
