file(REMOVE_RECURSE
  "CMakeFiles/kernels_md.dir/kernels_md.cpp.o"
  "CMakeFiles/kernels_md.dir/kernels_md.cpp.o.d"
  "kernels_md"
  "kernels_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
