# Empty compiler generated dependencies file for kernels_md.
# This may be replaced when dependencies are built.
