# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mpi_test "/root/repo/build/tests/mpi_test")
set_tests_properties(mpi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(middleware_test "/root/repo/build/tests/middleware_test")
set_tests_properties(middleware_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(perf_test "/root/repo/build/tests/perf_test")
set_tests_properties(perf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fft_test "/root/repo/build/tests/fft_test")
set_tests_properties(fft_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(md_test "/root/repo/build/tests/md_test")
set_tests_properties(md_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(md_extensions_test "/root/repo/build/tests/md_extensions_test")
set_tests_properties(md_extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pme_test "/root/repo/build/tests/pme_test")
set_tests_properties(pme_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sysbuild_test "/root/repo/build/tests/sysbuild_test")
set_tests_properties(sysbuild_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(charmm_test "/root/repo/build/tests/charmm_test")
set_tests_properties(charmm_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
