file(REMOVE_RECURSE
  "CMakeFiles/charmm_test.dir/charmm_test.cpp.o"
  "CMakeFiles/charmm_test.dir/charmm_test.cpp.o.d"
  "charmm_test"
  "charmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
