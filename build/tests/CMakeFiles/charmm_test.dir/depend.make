# Empty dependencies file for charmm_test.
# This may be replaced when dependencies are built.
