file(REMOVE_RECURSE
  "CMakeFiles/md_extensions_test.dir/md_extensions_test.cpp.o"
  "CMakeFiles/md_extensions_test.dir/md_extensions_test.cpp.o.d"
  "md_extensions_test"
  "md_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
