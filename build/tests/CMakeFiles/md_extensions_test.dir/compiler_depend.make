# Empty compiler generated dependencies file for md_extensions_test.
# This may be replaced when dependencies are built.
