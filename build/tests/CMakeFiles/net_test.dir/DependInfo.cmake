
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/net_test.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/charmm/CMakeFiles/repro_charmm.dir/DependInfo.cmake"
  "/root/repo/build/src/pme/CMakeFiles/repro_pme.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/repro_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/sysbuild/CMakeFiles/repro_sysbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/repro_md.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/repro_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/repro_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/repro_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
