file(REMOVE_RECURSE
  "CMakeFiles/pme_test.dir/pme_test.cpp.o"
  "CMakeFiles/pme_test.dir/pme_test.cpp.o.d"
  "pme_test"
  "pme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
