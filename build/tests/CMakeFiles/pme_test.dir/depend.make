# Empty dependencies file for pme_test.
# This may be replaced when dependencies are built.
