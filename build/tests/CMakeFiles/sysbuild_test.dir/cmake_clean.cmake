file(REMOVE_RECURSE
  "CMakeFiles/sysbuild_test.dir/sysbuild_test.cpp.o"
  "CMakeFiles/sysbuild_test.dir/sysbuild_test.cpp.o.d"
  "sysbuild_test"
  "sysbuild_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysbuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
