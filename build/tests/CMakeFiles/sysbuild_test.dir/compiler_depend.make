# Empty compiler generated dependencies file for sysbuild_test.
# This may be replaced when dependencies are built.
