file(REMOVE_RECURSE
  "CMakeFiles/charmm_cluster_cli.dir/charmm_cluster_cli.cpp.o"
  "CMakeFiles/charmm_cluster_cli.dir/charmm_cluster_cli.cpp.o.d"
  "charmm_cluster_cli"
  "charmm_cluster_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmm_cluster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
