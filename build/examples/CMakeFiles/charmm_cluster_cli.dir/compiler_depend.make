# Empty compiler generated dependencies file for charmm_cluster_cli.
# This may be replaced when dependencies are built.
