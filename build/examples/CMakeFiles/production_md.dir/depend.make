# Empty dependencies file for production_md.
# This may be replaced when dependencies are built.
