file(REMOVE_RECURSE
  "CMakeFiles/production_md.dir/production_md.cpp.o"
  "CMakeFiles/production_md.dir/production_md.cpp.o.d"
  "production_md"
  "production_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
