# Empty compiler generated dependencies file for grid_extrapolation.
# This may be replaced when dependencies are built.
