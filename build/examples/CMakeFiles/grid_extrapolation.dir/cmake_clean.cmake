file(REMOVE_RECURSE
  "CMakeFiles/grid_extrapolation.dir/grid_extrapolation.cpp.o"
  "CMakeFiles/grid_extrapolation.dir/grid_extrapolation.cpp.o.d"
  "grid_extrapolation"
  "grid_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
