file(REMOVE_RECURSE
  "CMakeFiles/trajectory_analysis.dir/trajectory_analysis.cpp.o"
  "CMakeFiles/trajectory_analysis.dir/trajectory_analysis.cpp.o.d"
  "trajectory_analysis"
  "trajectory_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
