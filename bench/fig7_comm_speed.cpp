// Figure 7: average and variability (min/max) of the per-node
// communication speed in MByte/s for CHARMM on MPI middleware and
// uni-processor nodes, for the three networks and 2, 4, 8 processors.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 7",
                      "average and variability of the communication speed "
                      "per node (MPI middleware, uni-processor)");

  std::vector<std::pair<core::Platform, int>> cells;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : {2, 4, 8}) {
      cells.emplace_back(platform, p);
    }
  }
  bench::prewarm(cells);

  Table table({"network", "procs", "avg (MB/s)", "min (MB/s)", "max (MB/s)",
               "spread"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : {2, 4, 8}) {
      const auto& cs = bench::run_cached(platform, p).breakdown.comm_speed;
      table.add_row(
          {net::to_string(network), std::to_string(p),
           Table::num(cs.avg_mb_per_s, 1), Table::num(cs.min_mb_per_s, 1),
           Table::num(cs.max_mb_per_s, 1),
           Table::pct((cs.max_mb_per_s - cs.min_mb_per_s) /
                      std::max(cs.avg_mb_per_s, 1e-9))});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper checks:\n");
  core::Platform tcp;
  auto spread = [&](int p) {
    const auto& cs = bench::run_cached(tcp, p).breakdown.comm_speed;
    return (cs.max_mb_per_s - cs.min_mb_per_s) /
           std::max(cs.avg_mb_per_s, 1e-9);
  };
  std::printf("  low TCP communication rate            : %s (avg %.1f MB/s "
              "at 8 procs)\n",
              bench::run_cached(tcp, 8).breakdown.comm_speed.avg_mb_per_s <
                      20.0
                  ? "yes"
                  : "NO",
              bench::run_cached(tcp, 8).breakdown.comm_speed.avg_mb_per_s);
  std::printf("  TCP variability starts at 4 procs     : %s "
              "(spread %.0f%% -> %.0f%% -> %.0f%%)\n",
              (spread(2) < 0.15 && spread(4) > spread(2)) ? "yes" : "NO",
              100 * spread(2), 100 * spread(4), 100 * spread(8));
  core::Platform score;
  score.network = net::Network::kScoreGigE;
  const auto& scs = bench::run_cached(score, 8).breakdown.comm_speed;
  std::printf("  SCore stable and faster on same wire  : %s "
              "(avg %.1f MB/s, spread %.0f%%)\n",
              scs.avg_mb_per_s >
                      bench::run_cached(tcp, 8).breakdown.comm_speed
                          .avg_mb_per_s
                  ? "yes"
                  : "NO",
              scs.avg_mb_per_s,
              100 * (scs.max_mb_per_s - scs.min_mb_per_s) /
                  scs.avg_mb_per_s);
  return 0;
}
