// Figure 6: percentage of computation, communication and synchronization
// in the classic (a) and PME (b) energy calculations, for TCP/IP on
// Gigabit Ethernet, SCore on Gigabit Ethernet and Myrinet.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 6",
                      "percent computation / communication / "
                      "synchronization per network (MPI, uni-processor)");

  std::vector<std::pair<core::Platform, int>> cells;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : core::paper_processor_counts()) {
      cells.emplace_back(platform, p);
    }
  }
  bench::prewarm(cells);

  Table table({"network", "procs", "classic comp/comm/sync",
               "pme comp/comm/sync"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : core::paper_processor_counts()) {
      const auto& r = bench::run_cached(platform, p);
      table.add_row({net::to_string(network), std::to_string(p),
                     bench::fmt_breakdown_pct(r.breakdown.classic_wall),
                     bench::fmt_breakdown_pct(r.breakdown.pme_wall)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper checks:\n");
  core::Platform tcp, score, myri;
  score.network = net::Network::kScoreGigE;
  myri.network = net::Network::kMyrinetGM;
  const auto& rt = bench::run_cached(tcp, 8);
  const auto& rs = bench::run_cached(score, 8);
  const auto& rm = bench::run_cached(myri, 8);
  const double tcp_comm = rt.breakdown.total_wall().comm;
  const double score_comm = rs.breakdown.total_wall().comm;
  const double myri_comm = rm.breakdown.total_wall().comm;
  std::printf("  communication carries the difference : %s "
              "(comm at 8p: TCP %.2fs, SCore %.2fs, Myrinet %.2fs)\n",
              (tcp_comm > score_comm && score_comm > myri_comm) ? "yes"
                                                                : "NO",
              tcp_comm, score_comm, myri_comm);
  std::printf("  synchronization stays within limits  : %s "
              "(sync at 8p: TCP %.2fs, SCore %.2fs, Myrinet %.2fs)\n",
              rt.breakdown.total_wall().sync < 0.3 * rt.total_seconds()
                  ? "yes"
                  : "NO",
              rt.breakdown.total_wall().sync, rs.breakdown.total_wall().sync,
              rm.breakdown.total_wall().sync);
  return 0;
}
