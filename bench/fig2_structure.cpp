// Figure 2: the *structure* of the energy calculation — classic routine
// (computation, ending in an all-to-all collective) and PME routine
// (computation + FFT forward + all-to-all personalized + convolution +
// FFT backward) — rendered from real per-rank timelines of one MD step,
// with and without the PME model.
#include "figure_common.hpp"

using namespace repro;

namespace {

core::ExperimentSpec structure_spec(bool use_pme) {
  core::ExperimentSpec spec;
  spec.nprocs = 4;
  spec.platform.network = net::Network::kScoreGigE;  // clean, jitter-free
  spec.charmm.use_pme = use_pme;
  spec.charmm.nsteps = 3;
  spec.record_timelines = true;
  return spec;
}

void show(bool use_pme, const core::ExperimentResult& r) {
  // Window on the middle step.
  double span = 0.0;
  for (const auto& t : r.timelines) span = std::max(span, t.span_end());
  perf::RenderOptions window;
  window.begin = span / 3.0;
  window.end = 2.0 * span / 3.0;
  window.columns = 100;
  std::printf("%s model — one MD step on 4 processors (SCore):\n%s\n",
              use_pme ? "With PME" : "Switch/shift (no PME)",
              perf::render_timelines(r.timelines, window).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 2",
                      "structure of the energy calculation without and "
                      "with the PME model (timeline rendering)");
  // Both timeline runs are independent cells; run them concurrently and
  // print in the fixed no-PME-then-PME order afterwards.
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), {structure_spec(false), structure_spec(true)},
      bench::default_jobs());
  show(false, results[0]);
  show(true, results[1]);
  std::printf(
      "Reading the charts: each step is a long computation block ('#')\n"
      "ending in the collective force reduction ('='), the classic routine.\n"
      "With PME, two additional '=' bands appear inside the step — the\n"
      "all-to-all personalized transposes of the forward and backward 3-D\n"
      "FFTs — exactly the structure of the paper's Figure 2.\n");
  return 0;
}
