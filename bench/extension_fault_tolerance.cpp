// Extension: fault-tolerance sweep — where does Figure 7's TCP
// variability come from?
//
// The base model reproduces the paper's wide TCP min/max communication
// band with a calibrated stochastic jitter knob (NetworkParams::jitter_*).
// This bench replaces that knob with the *mechanism* the knob stands in
// for: per-packet loss recovered by the stack's own discipline. Every run
// below has the hand-tuned jitter DISABLED; the only nondeterminism is
// packet loss injected by the fault layer.
//
//   - TCP recovers a lost packet with the Linux 2.4 coarse retransmission
//     timeout (~200 ms, exponential backoff): a fraction of a percent of
//     loss is enough to reopen the Figure-7 min/max band.
//   - SCore/Myrinet-style link-level flow control resends after one link
//     round trip (~2 x latency): the same loss rate is invisible.
//
// A second table perturbs single nodes (straggler slowdown, OS-noise
// bursts, a transient stall) and reports which component of the energy
// calculation — classic or PME — absorbed the injected delay.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

core::ExperimentSpec spec_without_jitter(net::Network network, int nprocs) {
  core::ExperimentSpec spec;
  spec.platform = core::reference_platform();
  spec.platform.network = network;
  spec.nprocs = nprocs;
  spec.charmm.nsteps = bench::options().steps;
  net::NetworkParams params = net::params_for(network);
  params.jitter_prob_per_rank = 0.0;  // isolate the loss-recovery mechanism
  spec.network_params = params;
  return spec;
}

net::FaultSpec loss_spec(double prob, net::PacketLossFault::Recovery rec) {
  net::FaultSpec faults;
  if (prob > 0.0) {
    net::PacketLossFault loss;
    loss.loss_prob = prob;
    loss.recovery = rec;
    faults.packet_loss.push_back(loss);
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header(
      "Extension: fault tolerance",
      "packet loss x recovery discipline, hand-tuned jitter disabled "
      "(8 processes)");

  const int nprocs = 8;
  const std::vector<double> loss_levels{0.0, 0.002, 0.005, 0.01};
  struct Stack {
    net::Network network;
    net::PacketLossFault::Recovery recovery;
  };
  const std::vector<Stack> stacks{
      {net::Network::kTcpGigE, net::PacketLossFault::Recovery::kTimeoutRetransmit},
      {net::Network::kScoreGigE, net::PacketLossFault::Recovery::kLinkLevel},
      {net::Network::kMyrinetGM, net::PacketLossFault::Recovery::kLinkLevel},
  };

  std::vector<core::ExperimentSpec> specs;
  for (const Stack& stack : stacks) {
    for (double loss : loss_levels) {
      core::ExperimentSpec spec = spec_without_jitter(stack.network, nprocs);
      spec.faults = loss_spec(loss, stack.recovery);
      specs.push_back(spec);
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"network", "loss", "recovery", "total (s)",
               "comm MB/s [min..max]", "retrans", "injected (s)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Stack& stack = stacks[i / loss_levels.size()];
    const double loss = loss_levels[i % loss_levels.size()];
    const core::ExperimentResult& r = results[i];
    char loss_buf[32];
    std::snprintf(loss_buf, sizeof(loss_buf), "%.1f%%", 100.0 * loss);
    char speed_buf[64];
    std::snprintf(speed_buf, sizeof(speed_buf), "%5.2f [%5.2f .. %5.2f]",
                  r.breakdown.comm_speed.avg_mb_per_s,
                  r.breakdown.comm_speed.min_mb_per_s,
                  r.breakdown.comm_speed.max_mb_per_s);
    const perf::FaultMetrics& f = r.metrics.faults;
    table.add_row({net::to_string(stack.network), loss_buf,
                   loss == 0.0 ? "-"
                   : stack.recovery ==
                           net::PacketLossFault::Recovery::kTimeoutRetransmit
                       ? "timeout"
                       : "linklevel",
                   Table::num(r.total_seconds(), 2), speed_buf,
                   std::to_string(f.retransmits),
                   Table::num(f.total_delay(), 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading: with jitter off, the loss-free rows are flat for every\n"
      "stack. Under identical loss rates the timeout-recovery (TCP) rows\n"
      "stretch and their min/max band opens, while link-level recovery\n"
      "absorbs the same loss in microseconds — Figure 7's TCP variability\n"
      "reproduced from retransmission dynamics, not a tuned constant.\n");

  // --- which component absorbs a node-level perturbation? ---------------
  std::printf("\nNode perturbations on the reference platform "
              "(TCP/IP on GigE, 8 processes, jitter off):\n");
  struct Perturbation {
    const char* label;
    const char* spec_text;
  };
  const std::vector<Perturbation> perturbations{
      {"none", ""},
      {"straggler node 0 (1.5x)", "straggler=0,x=1.5"},
      {"OS noise node 0 (5ms/50ms)", "straggler=0,period=0.05,dur=0.005"},
      {"stall node 1 (200ms at t=0.5s)", "stall=1,at=0.5,dur=0.2"},
  };
  std::vector<core::ExperimentSpec> pspecs;
  for (const Perturbation& p : perturbations) {
    core::ExperimentSpec spec =
        spec_without_jitter(net::Network::kTcpGigE, nprocs);
    if (p.spec_text[0] != '\0') {
      spec.faults = net::parse_fault_spec(p.spec_text);
    }
    pspecs.push_back(spec);
  }
  const std::vector<core::ExperimentResult> presults = core::run_experiments(
      bench::prepared_system(), pspecs, bench::default_jobs());

  Table ptable({"perturbation", "total (s)", "injected (s)",
                "absorbed classic (s)", "absorbed pme (s)"});
  for (std::size_t i = 0; i < perturbations.size(); ++i) {
    const core::ExperimentResult& r = presults[i];
    const perf::FaultMetrics& f = r.metrics.faults;
    ptable.add_row({perturbations[i].label,
                    Table::num(r.total_seconds(), 2),
                    Table::num(f.total_delay(), 3),
                    Table::num(f.absorbed_classic, 3),
                    Table::num(f.absorbed_pme, 3)});
  }
  std::printf("%s", ptable.to_string().c_str());
  std::printf(
      "\nReading: the absorbed-by split shows which half of the energy\n"
      "calculation a perturbation lands in — compute-side faults spread\n"
      "roughly like the compute split, while stalls land on whichever\n"
      "phase the frozen node was blocking.\n");
  return 0;
}
