// Extension study: how the scalability picture changes with problem size.
//
// The paper's conclusion predicts "good scalability for larger problems
// and larger clusters" once the communication software is right (§5).
// This bench sweeps the molecular system size (water boxes from ~1.3k to
// ~10k atoms, PME grids scaled with the box) on the reference TCP stack
// and on SCore, and reports the parallel efficiency at 8 processors —
// showing the computation-to-communication ratio swinging back in favour
// of parallelism as N grows.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

struct SizeCase {
  int waters_per_side;
  std::size_t grid;  // cubic PME grid dimension
};

core::ExperimentSpec size_spec(const SizeCase& size, net::Network network,
                               int p) {
  core::ExperimentSpec spec;
  spec.platform.network = network;
  spec.nprocs = p;
  spec.charmm.nsteps = 5;
  spec.charmm.pme = pme::PmeParams{size.grid, size.grid, size.grid, 4, 0.4};
  spec.charmm.cutoff = 9.0;
  spec.charmm.switch_on = 7.5;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Extension",
                      "parallel efficiency vs problem size (5 MD steps, "
                      "water boxes, PME grid scaled with the box)");

  const SizeCase sizes[] = {{8, 24}, {10, 32}, {13, 40}, {15, 48}};

  Table table({"atoms", "box (A)", "network", "total @1 (s)", "total @8 (s)",
               "efficiency @8"});
  for (const SizeCase& size : sizes) {
    // Each size needs its own BuiltSystem; the four cells sharing it
    // (2 networks x {1, 8} procs) run as one concurrent sweep.
    const sysbuild::BuiltSystem sys =
        sysbuild::build_water_box(size.waters_per_side);
    std::vector<core::ExperimentSpec> specs;
    for (net::Network network :
         {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
      specs.push_back(size_spec(size, network, 1));
      specs.push_back(size_spec(size, network, 8));
    }
    const std::vector<core::ExperimentResult> results =
        core::run_experiments(sys, specs, bench::default_jobs());
    std::size_t idx = 0;
    for (net::Network network :
         {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
      const double seq = results[idx++].total_seconds();
      const double par = results[idx++].total_seconds();
      table.add_row({std::to_string(sys.topo.natoms()),
                     Table::num(sys.box.lx(), 1), net::to_string(network),
                     Table::num(seq, 2), Table::num(par, 2),
                     Table::pct(seq / par / 8.0)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "As N grows, per-step computation rises ~linearly while the force\n"
      "reduction grows with N and the transposes with the grid — on a good\n"
      "stack (SCore) efficiency climbs with problem size, as the paper's\n"
      "conclusion predicts; on TCP/IP the overheads still dominate.\n");
  return 0;
}
