// The paper's full factorial design (§3.1): every cell of
// network x middleware x CPUs-per-node at 2, 4 and 8 processors, plus the
// quantified factor main effects. The paper gathered this data but
// published only the fractional slice around the focal point; this binary
// produces the complete table.
//
// Flags:
//   --jobs=N   worker threads for the sweep (default: hardware concurrency,
//              or REPRO_JOBS; 1 runs sequentially). Output is identical
//              for any N — only wall-clock changes.
//   --steps=N  MD steps per cell (default 10, the paper's run length)
//   --procs=A,B,...  processor counts to sweep (default 2,4,8)
//   --engine=fiber|thread  DES backend for every cell (default fiber or
//              $REPRO_ENGINE). Output is byte-identical across backends.
#include "figure_common.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/factorial.hpp"

using namespace repro;

namespace {

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = bench::default_jobs();
  std::vector<int> procs{2, 4, 8};
  charmm::CharmmConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::stoi(arg.substr(7));
    } else if (arg.rfind("--steps=", 0) == 0) {
      config.nsteps = std::stoi(arg.substr(8));
    } else if (arg.rfind("--procs=", 0) == 0) {
      procs = parse_int_list(arg.substr(8));
    } else if (arg.rfind("--engine=", 0) == 0) {
      // run_full_factorial builds its specs internally with the
      // process-wide default, so the flag flows through the environment.
      const sim::EngineBackend backend =
          sim::parse_engine_backend(arg.substr(9));
      setenv("REPRO_ENGINE", sim::to_string(backend), 1);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--steps=N] [--procs=A,B,...] "
                   "[--engine=fiber|thread]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header("Full factorial (§3.1)",
                      "all 12 platform cells x processor counts, with "
                      "factor main effects");
  const auto cells =
      core::run_full_factorial(bench::prepared_system(), procs, config, jobs);
  std::printf("%s\n", core::factorial_report(cells).c_str());
  return 0;
}
