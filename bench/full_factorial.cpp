// The paper's full factorial design (§3.1): every cell of
// network x middleware x CPUs-per-node at 2, 4 and 8 processors, plus the
// quantified factor main effects. The paper gathered this data but
// published only the fractional slice around the focal point; this binary
// produces the complete table.
#include "figure_common.hpp"

#include "core/factorial.hpp"

using namespace repro;

int main() {
  bench::print_header("Full factorial (§3.1)",
                      "all 12 platform cells x processor counts, with "
                      "factor main effects");
  const auto cells =
      core::run_full_factorial(bench::prepared_system(), {2, 4, 8});
  std::printf("%s\n", core::factorial_report(cells).c_str());
  return 0;
}
