// The paper's §5 conclusion, quantified: "The amount of parallelism in
// CHARMM should suffice to run efficient parallel calculations on clusters
// with up to the 32 to 64 processors ... For more advanced calculations
// using the particle mesh Ewald method, good scalability is limited to
// parallel calculations spanning a reasonable fraction (e.g. a quarter) of
// such a cluster. For more parallelism, a low overhead, high speed
// interconnect like e.g. Myrinet must be included."
//
// Part 1 sweeps processor counts on a good software stack (SCore) and on
// Myrinet, separately for the classic calculation (PME off) and the
// PME-enabled calculation, and reports the largest processor count that
// still achieves 50% parallel efficiency.
//
// Parts 2 and 3 are the study the paper could not run on its 16-node
// testbed: the same 50%-efficiency limit across decomposition strategies
// (including the spatial domain decomposition CHARMM lacked) x cluster
// fabrics, with processor counts up to 128 — first for the classic
// calculation, then asking whether the domain decomposition moves the PME
// wall. --smoke trims the grids for CI.
#include "figure_common.hpp"

#include "charmm/decomp_spec.hpp"
#include "net/topology.hpp"

using namespace repro;
using repro::util::Table;

namespace {

struct Sweep {
  const char* label;
  net::Network network;
  bool use_pme;
};

// Energy model for the era's nodes (a 1 GHz Pentium III box idles around
// 55 W and adds ~25 W under full FPU load). Joules-to-solution then shows
// the conclusion's other face: past the efficiency knee, extra processors
// still shrink time a little while energy grows nearly linearly.
perf::PowerModel node_power() {
  perf::PowerModel model;
  model.static_watts_per_node = 55.0;
  model.dynamic_watts = 25.0;
  return model;
}

core::ExperimentSpec sweep_spec(const Sweep& sweep, int p) {
  core::ExperimentSpec spec;
  spec.platform.network = sweep.network;
  spec.nprocs = p;
  spec.charmm.use_pme = sweep.use_pme;
  spec.power = node_power();
  return spec;
}

// The scalability limit: the largest processor count in the *contiguous*
// prefix (from p=1) whose every point holds >=50% efficiency. A larger
// count that recovers after a dip does not extend the limit — the dip is
// where scaling broke.
class EfficiencyLimit {
 public:
  void observe(int p, double eff) {
    if (!prefix_ok_) return;
    if (eff >= 0.5) {
      limit_ = p;
    } else {
      prefix_ok_ = false;
    }
  }
  // "none" when even p=1 missed the threshold (cannot happen for p=1
  // efficiency 1.0, but the printing must not invent a number).
  std::string to_string() const {
    return limit_ > 0 ? std::to_string(limit_) + " procs" : "none";
  }

 private:
  int limit_ = 0;
  bool prefix_ok_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Conclusion (§5)",
                      "scalability limits of the classic and PME "
                      "calculations (50% efficiency threshold)");

  const Sweep sweeps[] = {
      {"classic only, TCP/IP", net::Network::kTcpGigE, false},
      {"with PME, TCP/IP", net::Network::kTcpGigE, true},
      {"classic only, SCore", net::Network::kScoreGigE, false},
      {"with PME, SCore", net::Network::kScoreGigE, true},
      {"classic only, Myrinet", net::Network::kMyrinetGM, false},
      {"with PME, Myrinet", net::Network::kMyrinetGM, true},
  };
  const std::vector<int> counts = bench::options().smoke
                                      ? std::vector<int>{1, 2, 8}
                                      : std::vector<int>{1, 2, 4, 8, 16, 32};

  std::vector<core::ExperimentSpec> specs;
  for (const Sweep& sweep : sweeps) {
    for (int p : counts) {
      specs.push_back(sweep_spec(sweep, p));
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"configuration", "procs", "total (s)", "speedup",
               "efficiency", "energy (J)"});
  std::map<std::string, EfficiencyLimit> limit;
  std::size_t idx = 0;
  for (const Sweep& sweep : sweeps) {
    double seq = 0.0;
    for (int p : counts) {
      const core::ExperimentResult& r = results[idx++];
      const double total = r.total_seconds();
      if (p == 1) seq = total;
      const double eff = seq / total / p;
      limit[sweep.label].observe(p, eff);
      table.add_row({sweep.label, std::to_string(p), Table::num(total, 2),
                     Table::num(seq / total, 2), Table::pct(eff),
                     Table::num(r.metrics.power.total_joules(), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("largest processor count with >=50%% efficiency:\n");
  for (const auto& [label, lim] : limit) {
    std::printf("  %-24s : %s\n", label.c_str(), lim.to_string().c_str());
  }
  std::printf(
      "\npaper checks (§5):\n"
      "  - on the commodity TCP/Ethernet stack, PME hits its efficiency\n"
      "    limit at a fraction of the classic calculation's limit\n"
      "    (classic %s vs PME %s here; the paper: 'a quarter of\n"
      "    such a cluster');\n"
      "  - 'for more parallelism, a low overhead, high speed interconnect\n"
      "    like e.g. Myrinet must be included': the PME limit rises from\n"
      "    %s (TCP) to %s (Myrinet);\n"
      "  - the paper's 32-64-processor headroom assumes problems that grow\n"
      "    with the cluster — strong-scaling this fixed 3552-atom system\n"
      "    leaves only ~110 atoms per rank at 32 procs; see\n"
      "    bench/extension_problem_size for the size dimension.\n",
      limit["classic only, TCP/IP"].to_string().c_str(),
      limit["with PME, TCP/IP"].to_string().c_str(),
      limit["with PME, TCP/IP"].to_string().c_str(),
      limit["with PME, Myrinet"].to_string().c_str());

  // --- Part 2: the scaling study beyond the paper's testbed -------------
  // Decomposition strategy x fabric topology for the classic calculation,
  // Myrinet (the paper's own prescription for "more parallelism"),
  // processor counts past the 16-node CoPs up to 128. The replicated-data
  // strategies all allreduce O(N) state per step, so their limits stall
  // regardless of fabric; the spatial domain decomposition only exchanges
  // halo shells and overtakes them as the count grows. (task decoupling
  // requires PME, so the classic sweep pits atom vs force vs spatial.)
  std::printf(
      "\n================================================================\n"
      "Beyond the paper: decomposition x topology scaling to 128 procs\n"
      "(classic calculation, Myrinet GM)\n"
      "================================================================\n");

  const char* kinds[] = {"atom", "force", "spatial"};
  const char* fabrics[] = {"single", "fattree", "torus"};
  const std::vector<int> counts2 =
      bench::options().smoke ? std::vector<int>{1, 8}
                             : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128};

  std::vector<core::ExperimentSpec> specs2;
  for (const char* kind : kinds) {
    for (const char* fabric : fabrics) {
      for (int p : counts2) {
        core::ExperimentSpec spec;
        spec.platform.network = net::Network::kMyrinetGM;
        spec.nprocs = p;
        spec.charmm.use_pme = false;
        spec.charmm.decomp = charmm::parse_decomp_spec(kind);
        spec.topology = net::parse_topology_spec(fabric);
        specs2.push_back(spec);
      }
    }
  }
  const std::vector<core::ExperimentResult> results2 = core::run_experiments(
      bench::prepared_system(), specs2, bench::default_jobs());

  Table table2({"decomposition", "topology", "procs", "total (s)",
                "speedup", "efficiency", "imbalance"});
  std::map<std::string, EfficiencyLimit> limit2;
  idx = 0;
  for (const char* kind : kinds) {
    for (const char* fabric : fabrics) {
      const std::string key = std::string(kind) + " / " + fabric;
      double seq = 0.0;
      for (int p : counts2) {
        const core::ExperimentResult& r = results2[idx++];
        const double total = r.total_seconds();
        if (p == 1) seq = total;
        const double eff = seq / total / p;
        limit2[key].observe(p, eff);
        // Compute imbalance (max/mean per-rank busy time): the direct
        // efficiency ceiling of a bulk-synchronous step, 1/factor.
        const double imb = r.metrics.compute_imbalance.factor();
        table2.add_row({kind, fabric, std::to_string(p),
                        Table::num(total, 2), Table::num(seq / total, 2),
                        Table::pct(eff),
                        imb > 0.0 ? Table::num(imb, 2) : "-"});
      }
    }
  }
  std::printf("%s\n", table2.to_string().c_str());

  std::printf("largest processor count with >=50%% efficiency:\n");
  for (const char* kind : kinds) {
    for (const char* fabric : fabrics) {
      const std::string key = std::string(kind) + " / " + fabric;
      std::printf("  %-18s : %s\n", key.c_str(),
                  limit2[key].to_string().c_str());
    }
  }
  std::printf(
      "\nreading (beyond-the-paper checks):\n"
      "  - the replicated strategies allreduce the full force array every\n"
      "    step, so their absolute times flatten at small processor counts\n"
      "    on every fabric, while the spatial decomposition's halo traffic\n"
      "    shrinks with the domain surface and keeps the time falling to\n"
      "    the largest counts (compare the total columns; the efficiency\n"
      "    limits of all strategies fall early because strong-scaling\n"
      "    3552 atoms runs out of work — 72 cutoff-sized cells — long\n"
      "    before it runs out of processors);\n"
      "  - the fabric column barely moves any limit: at this problem size\n"
      "    the bottleneck is the decomposition's traffic volume and the\n"
      "    load balance, not fabric contention (the imbalance column —\n"
      "    max/mean per-rank compute time — is that bound directly;\n"
      "    bench/extension_load_balance measures how much the ldb=\n"
      "    balancer claws back).\n");

  // --- Part 3: does the domain decomposition move the PME wall? ---------
  // The paper's PME limit ('a quarter of such a cluster') is set by the
  // slab FFT's communication. The spatial decomposition fixes the classic
  // calculation's traffic but still has to gather positions for — and
  // allreduce reciprocal forces from — the replicated slab PME, an
  // all-to-all that grows with p^2. The pencil variant decomposes the
  // mesh too: charges move as region-sized plane exchanges and the FFT
  // transposes run pairwise inside Py/Pz-sized pencil groups. Sweeping
  // atom vs spatial vs spatial+pencil with PME on shows which pieces of
  // the reciprocal space actually set the wall.
  std::printf(
      "\n================================================================\n"
      "Beyond the paper: does spatial decomposition move the PME wall?\n"
      "(PME on, Myrinet GM, single switch)\n"
      "================================================================\n");

  const char* kinds3[] = {"atom", "spatial", "spatial:pme=pencil"};
  std::vector<core::ExperimentSpec> specs3;
  for (const char* kind : kinds3) {
    for (int p : counts2) {
      core::ExperimentSpec spec;
      spec.platform.network = net::Network::kMyrinetGM;
      spec.nprocs = p;
      spec.charmm.use_pme = true;
      spec.charmm.decomp = charmm::parse_decomp_spec(kind);
      specs3.push_back(spec);
    }
  }
  const std::vector<core::ExperimentResult> results3 = core::run_experiments(
      bench::prepared_system(), specs3, bench::default_jobs());

  Table table3({"decomposition", "procs", "total (s)", "speedup",
                "efficiency"});
  std::map<std::string, EfficiencyLimit> limit3;
  idx = 0;
  for (const char* kind : kinds3) {
    double seq = 0.0;
    for (int p : counts2) {
      const double total = results3[idx++].total_seconds();
      if (p == 1) seq = total;
      const double eff = seq / total / p;
      limit3[kind].observe(p, eff);
      table3.add_row({kind, std::to_string(p), Table::num(total, 2),
                      Table::num(seq / total, 2), Table::pct(eff)});
    }
  }
  std::printf("%s\n", table3.to_string().c_str());

  std::printf("largest processor count with >=50%% efficiency:\n");
  for (const char* kind : kinds3) {
    std::printf("  %-18s : %s\n", kind, limit3[kind].to_string().c_str());
  }
  std::printf(
      "\nreading: spatial alone does not move the wall. It feeds the slab\n"
      "PME through a pairwise position gather plus a full-array\n"
      "reciprocal-force allreduce, so with PME on its step time is\n"
      "dominated by exactly the traffic the classic sweep eliminated —\n"
      "its total column flattens where atom's does. The pencil rows are\n"
      "the fix the paper called for: with the mesh decomposed over a\n"
      "Py x Pz pencil grid there is no gather and no reciprocal\n"
      "allreduce, only region-sized plane exchanges and transposes\n"
      "confined to Py- and Pz-sized groups, so the spatial+pencil step\n"
      "time keeps falling past the slab plateau and the 50%%-efficiency\n"
      "limit moves out. The paper's conclusion stands refined: making\n"
      "CHARMM's direct space scale is not enough — the mesh needs its\n"
      "own decomposition before the PME wall moves.\n");
  return 0;
}
