// The paper's §5 conclusion, quantified: "The amount of parallelism in
// CHARMM should suffice to run efficient parallel calculations on clusters
// with up to the 32 to 64 processors ... For more advanced calculations
// using the particle mesh Ewald method, good scalability is limited to
// parallel calculations spanning a reasonable fraction (e.g. a quarter) of
// such a cluster. For more parallelism, a low overhead, high speed
// interconnect like e.g. Myrinet must be included."
//
// This bench sweeps processor counts on a good software stack (SCore) and
// on Myrinet, separately for the classic calculation (PME off) and the
// PME-enabled calculation, and reports the largest processor count that
// still achieves 50% parallel efficiency.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

struct Sweep {
  const char* label;
  net::Network network;
  bool use_pme;
};

core::ExperimentSpec sweep_spec(const Sweep& sweep, int p) {
  core::ExperimentSpec spec;
  spec.platform.network = sweep.network;
  spec.nprocs = p;
  spec.charmm.use_pme = sweep.use_pme;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Conclusion (§5)",
                      "scalability limits of the classic and PME "
                      "calculations (50% efficiency threshold)");

  const Sweep sweeps[] = {
      {"classic only, TCP/IP", net::Network::kTcpGigE, false},
      {"with PME, TCP/IP", net::Network::kTcpGigE, true},
      {"classic only, SCore", net::Network::kScoreGigE, false},
      {"with PME, SCore", net::Network::kScoreGigE, true},
      {"classic only, Myrinet", net::Network::kMyrinetGM, false},
      {"with PME, Myrinet", net::Network::kMyrinetGM, true},
  };
  const int counts[] = {1, 2, 4, 8, 16, 32};

  std::vector<core::ExperimentSpec> specs;
  for (const Sweep& sweep : sweeps) {
    for (int p : counts) {
      specs.push_back(sweep_spec(sweep, p));
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"configuration", "procs", "total (s)", "speedup",
               "efficiency"});
  std::map<std::string, int> limit;  // last p with efficiency >= 50%
  std::size_t idx = 0;
  for (const Sweep& sweep : sweeps) {
    double seq = 0.0;
    for (int p : counts) {
      const double total = results[idx++].total_seconds();
      if (p == 1) seq = total;
      const double eff = seq / total / p;
      if (eff >= 0.5) limit[sweep.label] = p;
      table.add_row({sweep.label, std::to_string(p), Table::num(total, 2),
                     Table::num(seq / total, 2), Table::pct(eff)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("largest processor count with >=50%% efficiency:\n");
  for (const auto& [label, p] : limit) {
    std::printf("  %-24s : %d procs\n", label.c_str(), p);
  }
  std::printf(
      "\npaper checks (§5):\n"
      "  - on the commodity TCP/Ethernet stack, PME hits its efficiency\n"
      "    limit at a fraction of the classic calculation's limit\n"
      "    (classic %d vs PME %d procs here; the paper: 'a quarter of\n"
      "    such a cluster');\n"
      "  - 'for more parallelism, a low overhead, high speed interconnect\n"
      "    like e.g. Myrinet must be included': the PME limit rises from\n"
      "    %d (TCP) to %d (Myrinet) processors;\n"
      "  - the paper's 32-64-processor headroom assumes problems that grow\n"
      "    with the cluster — strong-scaling this fixed 3552-atom system\n"
      "    leaves only ~110 atoms per rank at 32 procs; see\n"
      "    bench/extension_problem_size for the size dimension.\n",
      limit["classic only, TCP/IP"], limit["with PME, TCP/IP"],
      limit["with PME, TCP/IP"], limit["with PME, Myrinet"]);
  return 0;
}
