// Ablation: how much of the scalability loss is the *collective
// algorithm*? The paper concludes that "optimizing the communication code
// with proper programming skills ... will add a significant amount of
// scalability to CHARMM at no extra hardware cost". This bench quantifies
// that: the same force reduction executed with the MPICH-1 reduce+bcast
// (what the 2001 cluster ran), recursive doubling, and the
// bandwidth-optimal ring (reduce-scatter + allgather) on each network.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

const char* algo_name(mpi::AllreduceAlgorithm a) {
  switch (a) {
    case mpi::AllreduceAlgorithm::kReduceBcast:
      return "reduce+bcast (MPICH-1)";
    case mpi::AllreduceAlgorithm::kRecursiveDoubling:
      return "recursive doubling";
    case mpi::AllreduceAlgorithm::kRing:
      return "ring (reduce-scatter)";
  }
  return "?";
}

core::ExperimentSpec cell_spec(net::Network network,
                               mpi::AllreduceAlgorithm algo, int nprocs) {
  core::ExperimentSpec spec;
  spec.platform.network = network;
  spec.nprocs = nprocs;
  spec.collectives.allreduce = algo;
  // This bench predates the sweep path and seeded the network directly
  // with ClusterConfig's default; keep that seed so the table is stable.
  spec.seed = net::ClusterConfig{}.seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Ablation",
                      "allreduce algorithm vs classic-calculation time "
                      "(the force reduction is the classic part's "
                      "collective)");

  struct Cell {
    net::Network network;
    mpi::AllreduceAlgorithm algo;
  };
  std::vector<Cell> rows;
  std::vector<core::ExperimentSpec> specs;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
    for (mpi::AllreduceAlgorithm algo :
         {mpi::AllreduceAlgorithm::kReduceBcast,
          mpi::AllreduceAlgorithm::kRecursiveDoubling,
          mpi::AllreduceAlgorithm::kRing}) {
      rows.push_back(Cell{network, algo});
      specs.push_back(cell_spec(network, algo, 4));
      specs.push_back(cell_spec(network, algo, 8));
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"network", "allreduce algorithm", "classic @4p (s)",
               "classic @8p (s)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({net::to_string(rows[i].network), algo_name(rows[i].algo),
                   Table::num(results[2 * i].classic_seconds(), 2),
                   Table::num(results[2 * i + 1].classic_seconds(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The algorithm choice spans tens of percent of the classic part on\n"
      "the slow TCP stack (recursive doubling's log2(p) full-vector\n"
      "exchanges suffer the half-duplex penalty; the bandwidth-optimal\n"
      "ring is best), supporting the paper's conclusion that better\n"
      "communication software buys scalability without new hardware.\n");
  return 0;
}
