// Ablation: how much of the scalability loss is the *collective
// algorithm*? The paper concludes that "optimizing the communication code
// with proper programming skills ... will add a significant amount of
// scalability to CHARMM at no extra hardware cost". This bench quantifies
// that: the same force reduction executed with the MPICH-1 reduce+bcast
// (what the 2001 cluster ran), recursive doubling, and the
// bandwidth-optimal ring (reduce-scatter + allgather) on each network.
#include "figure_common.hpp"

#include "perf/report.hpp"
#include "sim/engine.hpp"

using namespace repro;
using repro::util::Table;

namespace {

const char* algo_name(mpi::AllreduceAlgorithm a) {
  switch (a) {
    case mpi::AllreduceAlgorithm::kReduceBcast:
      return "reduce+bcast (MPICH-1)";
    case mpi::AllreduceAlgorithm::kRecursiveDoubling:
      return "recursive doubling";
    case mpi::AllreduceAlgorithm::kRing:
      return "ring (reduce-scatter)";
  }
  return "?";
}

double classic_total(net::Network network, mpi::AllreduceAlgorithm algo,
                     int nprocs) {
  net::ClusterConfig config;
  config.nranks = nprocs;
  config.network = network;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nprocs));
  mpi::CollectiveConfig cc;
  cc.allreduce = algo;
  sim::Engine engine(nprocs);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recorders[static_cast<std::size_t>(ctx.rank())], cc);
    middleware::MpiMiddleware mw(comm);
    charmm::CharmmConfig charmm_config;
    charmm::run_charmm_rank(bench::prepared_system(), charmm_config, mw);
  });
  return perf::aggregate(recorders, 1).classic_wall.total();
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "allreduce algorithm vs classic-calculation time "
                      "(the force reduction is the classic part's "
                      "collective)");

  Table table({"network", "allreduce algorithm", "classic @4p (s)",
               "classic @8p (s)"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
    for (mpi::AllreduceAlgorithm algo :
         {mpi::AllreduceAlgorithm::kReduceBcast,
          mpi::AllreduceAlgorithm::kRecursiveDoubling,
          mpi::AllreduceAlgorithm::kRing}) {
      table.add_row({net::to_string(network), algo_name(algo),
                     Table::num(classic_total(network, algo, 4), 2),
                     Table::num(classic_total(network, algo, 8), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The algorithm choice spans tens of percent of the classic part on\n"
      "the slow TCP stack (recursive doubling's log2(p) full-vector\n"
      "exchanges suffer the half-duplex penalty; the bandwidth-optimal\n"
      "ring is best), supporting the paper's conclusion that better\n"
      "communication software buys scalability without new hardware.\n");
  return 0;
}
