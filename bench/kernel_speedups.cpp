// Scalar-vs-SIMD speedup measurement for the three physics hot paths
// (--kernel=scalar|simd): the LJ/Ewald pair kernel, the serial PME
// reciprocal solve (B-spline spread + interpolate + FFT), and the 3-D FFT
// on the paper's 80 x 36 x 48 grid.
//
// This is a hand-timed binary rather than a google-benchmark one so it
// can take --json=FILE and write BENCH_kernels.json directly (the
// BENCHMARK_MAIN driver rejects unknown flags). Each family is timed
// best-of-N to shave scheduler noise, and the SIMD variant's result is
// checked against the scalar one before any timing is trusted.
//
// usage: kernel_speedups [--smoke] [--json=FILE]
//   --smoke   CI mode: one rep per family, seconds of wall clock total.
//   --json    write BENCH_kernels.json-style output.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fft/fft.hpp"
#include "md/neighbor.hpp"
#include "md/nonbonded.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"
#include "util/rng.hpp"

using namespace repro;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-reps wall time per call of fn (which runs `iters` calls).
template <typename Fn>
double best_of(int reps, int iters, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = (now_s() - t0) / iters;
    if (dt < best) best = dt;
  }
  return best;
}

struct FamilyResult {
  std::string name;
  std::string unit;       // what items/sec counts
  double items = 0.0;     // items per call
  double scalar_s = 0.0;  // best-of per-call seconds
  double simd_s = 0.0;
  double max_rel_err = 0.0;  // simd vs scalar on the checked observable
  double speedup() const { return simd_s > 0 ? scalar_s / simd_s : 0.0; }
};

double rel_err(double a, double b) {
  const double denom = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) / denom;
}

// --- pair kernel: LJ + Ewald direct on a bulk water box ------------------

FamilyResult run_pair(int reps, int iters) {
  const sysbuild::BuiltSystem sys = sysbuild::build_water_box(8);
  md::NonbondedOptions opts;
  opts.cutoff = 9.0;
  opts.switch_on = 7.0;
  opts.elec = md::NonbondedOptions::Elec::kEwaldDirect;
  opts.table = md::build_pair_table(sys.topo);
  md::NeighborList nbl(opts.cutoff, 2.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  std::vector<util::Vec3> forces(static_cast<std::size_t>(sys.topo.natoms()));

  double energy[2] = {0.0, 0.0};
  std::size_t pairs = 0;
  auto run = [&](util::KernelKind kind, int slot) {
    opts.kernel = kind;
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    md::EnergyTerms e;
    pairs = md::nonbonded_energy(sys.topo, sys.box, sys.positions, nbl, opts,
                                 forces, e)
                .pairs_listed;
    energy[slot] = e.lj + e.elec;
  };

  FamilyResult fr;
  fr.name = "pair_lj_ewald";
  fr.unit = "listed pairs";
  run(util::KernelKind::kScalar, 0);  // warm caches + record reference
  run(util::KernelKind::kSimd, 1);
  fr.max_rel_err = rel_err(energy[0], energy[1]);
  fr.items = static_cast<double>(pairs);
  fr.scalar_s =
      best_of(reps, iters, [&] { run(util::KernelKind::kScalar, 0); });
  fr.simd_s = best_of(reps, iters, [&] { run(util::KernelKind::kSimd, 1); });
  return fr;
}

// --- PME reciprocal: spread + 3-D FFT + convolve + interpolate -----------

FamilyResult run_pme(int reps, int iters) {
  const sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like();
  const pme::PmeParams params{80, 36, 48, 4, 0.34};
  pme::SerialPme scalar_pme(params, sys.box, util::KernelKind::kScalar);
  pme::SerialPme simd_pme(params, sys.box, util::KernelKind::kSimd);
  std::vector<util::Vec3> forces(static_cast<std::size_t>(sys.topo.natoms()));

  auto run = [&](pme::SerialPme& p) {
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    return p.reciprocal(sys.topo, sys.positions, forces);
  };

  FamilyResult fr;
  fr.name = "pme_reciprocal";
  fr.unit = "atoms";
  fr.items = static_cast<double>(sys.topo.natoms());
  fr.max_rel_err = rel_err(run(scalar_pme), run(simd_pme));
  fr.scalar_s = best_of(reps, iters, [&] { run(scalar_pme); });
  fr.simd_s = best_of(reps, iters, [&] { run(simd_pme); });
  return fr;
}

// --- 3-D FFT on the paper's PME grid -------------------------------------

FamilyResult run_fft(int reps, int iters) {
  constexpr int nx = 80, ny = 36, nz = 48;
  constexpr std::size_t n = static_cast<std::size_t>(nx) * ny * nz;
  util::Rng rng(1138);
  std::vector<fft::Complex> ref(n);
  for (auto& c : ref) c = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

  fft::Fft3D scalar_plan(nx, ny, nz, util::KernelKind::kScalar);
  fft::Fft3D simd_plan(nx, ny, nz, util::KernelKind::kSimd);

  std::vector<fft::Complex> a = ref;
  std::vector<fft::Complex> b = ref;
  scalar_plan.forward(a.data());
  simd_plan.forward(b.data());
  FamilyResult fr;
  fr.name = "fft3d_80x36x48";
  fr.unit = "grid points";
  fr.items = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    fr.max_rel_err = std::max(fr.max_rel_err, rel_err(a[i].real(), b[i].real()));
    fr.max_rel_err = std::max(fr.max_rel_err, rel_err(a[i].imag(), b[i].imag()));
  }

  std::vector<fft::Complex> work = ref;
  fr.scalar_s = best_of(reps, iters, [&] {
    work = ref;
    scalar_plan.forward(work.data());
  });
  fr.simd_s = best_of(reps, iters, [&] {
    work = ref;
    simd_plan.forward(work.data());
  });
  return fr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown option: %s (supported: --smoke --json=FILE)\n",
                   arg.c_str());
      return 2;
    }
  }

  const int reps = smoke ? 2 : 5;
  const int iters = smoke ? 1 : 3;

  std::printf("kernel speedups: --kernel=simd vs --kernel=scalar "
              "(best of %d x %d calls)\n",
              reps, iters);
  std::printf("%-16s %12s %12s %9s %14s %12s\n", "kernel", "scalar_ms",
              "simd_ms", "speedup", "simd_items/s", "max_rel_err");

  std::vector<FamilyResult> results;
  results.push_back(run_pair(reps, iters));
  results.push_back(run_pme(reps, iters));
  results.push_back(run_fft(reps, iters));

  bool ok = true;
  for (const auto& fr : results) {
    std::printf("%-16s %12.3f %12.3f %8.2fx %14.3e %12.2e\n", fr.name.c_str(),
                fr.scalar_s * 1e3, fr.simd_s * 1e3, fr.speedup(),
                fr.simd_s > 0 ? fr.items / fr.simd_s : 0.0, fr.max_rel_err);
    if (!(fr.max_rel_err <= 1e-10)) {
      std::fprintf(stderr, "FAIL: %s simd disagrees with scalar (%.3e)\n",
                   fr.name.c_str(), fr.max_rel_err);
      ok = false;
    }
  }
  std::fflush(stdout);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"SIMD kernel variants (this PR): branch-free "
        "#pragma omp simd pair kernel with tabulated erfc/exp, batched "
        "B-spline weights + real staging grid in PME, per-level twiddle "
        "tables in the FFT combine; scalar is the bit-exact golden "
        "reference\",\n");
    std::fprintf(f,
                 "  \"machine\": { \"hardware_threads\": 1, \"note\": "
                 "\"single-vCPU container; -O3, no -march flags; best-of-%d "
                 "timing over %d calls per rep\" },\n",
                 reps, iters);
    std::fprintf(f,
                 "  \"tolerance_note\": \"simd vs scalar checked per family "
                 "before timing; pair energies pinned to 1e-10 relative, PME "
                 "and FFT are bit-identical (tests/kernel_variant_test.cpp). "
                 "Both variants report identical work counters, so simulated "
                 "time is exactly kernel-independent.\",\n");
    std::fprintf(f, "  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& fr = results[i];
      std::fprintf(f,
                   "    { \"kernel\": \"%s\", \"scalar_ms\": %.3f, "
                   "\"simd_ms\": %.3f, \"speedup\": %.2f, "
                   "\"items\": \"%s\", \"simd_items_per_sec\": %.3e, "
                   "\"max_rel_err\": %.2e }%s\n",
                   fr.name.c_str(), fr.scalar_s * 1e3, fr.simd_s * 1e3,
                   fr.speedup(), fr.unit.c_str(),
                   fr.simd_s > 0 ? fr.items / fr.simd_s : 0.0, fr.max_rel_err,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
