// Microbenchmarks for the discrete-event cluster simulator itself: how
// fast the simulation machinery processes messages and collectives
// (real time, not virtual time; regression guards, not a paper figure).
#include <benchmark/benchmark.h>

#include "middleware/middleware.hpp"
#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace {

using namespace repro;

void BM_EnginePingPong(benchmark::State& state) {
  for (auto _ : state) {
    net::ClusterConfig config;
    config.nranks = 2;
    net::ClusterNetwork cluster(config);
    std::vector<perf::RankRecorder> recs(2);
    sim::Engine engine(2);
    engine.run([&](sim::RankCtx& ctx) {
      mpi::Comm comm(ctx, cluster,
                     recs[static_cast<std::size_t>(ctx.rank())]);
      double token = 1.0;
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, &token, sizeof(token));
          comm.recv(1, 2, &token, sizeof(token));
        } else {
          comm.recv(0, 1, &token, sizeof(token));
          comm.send(0, 2, &token, sizeof(token));
        }
      }
    });
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_EnginePingPong)->Unit(benchmark::kMillisecond);

void BM_Allreduce16Ranks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    net::ClusterConfig config;
    config.nranks = 16;
    net::ClusterNetwork cluster(config);
    std::vector<perf::RankRecorder> recs(16);
    sim::Engine engine(16);
    engine.run([&](sim::RankCtx& ctx) {
      mpi::Comm comm(ctx, cluster,
                     recs[static_cast<std::size_t>(ctx.rank())]);
      std::vector<double> data(n, 1.0);
      comm.allreduce_sum(data.data(), data.size());
      benchmark::DoNotOptimize(data[0]);
    });
  }
}
BENCHMARK(BM_Allreduce16Ranks)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_CmpiNeighborSync8Ranks(benchmark::State& state) {
  for (auto _ : state) {
    net::ClusterConfig config;
    config.nranks = 8;
    net::ClusterNetwork cluster(config);
    std::vector<perf::RankRecorder> recs(8);
    sim::Engine engine(8);
    engine.run([&](sim::RankCtx& ctx) {
      mpi::Comm comm(ctx, cluster,
                     recs[static_cast<std::size_t>(ctx.rank())]);
      middleware::CmpiMiddleware mw(comm);
      for (int i = 0; i < 10; ++i) mw.synchronize();
    });
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_CmpiNeighborSync8Ranks)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
