// Shared scaffolding for the figure-regeneration binaries.
//
// Every bench binary prepares the paper's molecular system (built
// synthetically, then relaxed), sweeps the relevant factor, and prints the
// same rows/series the corresponding figure plots. Absolute values are
// simulator output (calibrated to the paper's scale); EXPERIMENTS.md
// records the paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "sysbuild/builder.hpp"
#include "util/table.hpp"

namespace repro::bench {

// Figure-wide knobs, settable from the command line (parse_figure_args).
// The defaults reproduce the paper's figures exactly; the golden-file
// regression harness shortens runs with --steps to keep CI fast.
struct BenchOptions {
  int steps = 10;  // MD steps per cell (the paper's measurement runs)
  int jobs = -1;   // sweep concurrency; -1 = REPRO_JOBS / hardware default
  // DES execution backend for every cell ($REPRO_ENGINE / fiber by
  // default). Simulated output is byte-identical across backends.
  sim::EngineBackend engine = sim::default_engine_backend();
  // CI mode: benches with large sweeps (e.g. the conclusion's 128-rank
  // scaling study) cut their factor grids down to a fast subset that
  // still exercises every code path.
  bool smoke = false;
};

inline BenchOptions& options() {
  static BenchOptions opts;
  return opts;
}

// Accepts --steps=N, --jobs=N, --engine=fiber|thread and --smoke;
// anything else exits with an error so a typo cannot silently produce a
// full-length run in CI.
inline void parse_figure_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--steps=", 0) == 0) {
      options().steps = std::atoi(arg.c_str() + 8);
      if (options().steps < 1) {
        std::fprintf(stderr, "bad --steps value: %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options().jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--engine=", 0) == 0) {
      try {
        options().engine = sim::parse_engine_backend(arg.c_str() + 9);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--smoke") {
      options().smoke = true;
    } else {
      std::fprintf(stderr,
                   "unknown option: %s (supported: --steps=N --jobs=N "
                   "--engine=fiber|thread --smoke)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
}

inline const sysbuild::BuiltSystem& prepared_system() {
  static const sysbuild::BuiltSystem sys = [] {
    std::fprintf(stderr,
                 "[bench] building + relaxing the 3552-atom system...\n");
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    charmm::relax_system(s, 100);
    return s;
  }();
  return sys;
}

// Worker count for the bench sweeps: --jobs if given, else REPRO_JOBS if
// set, otherwise the hardware concurrency (SweepRunner's default for
// jobs <= 0).
inline int default_jobs() {
  if (options().jobs >= 0) return options().jobs;
  if (const char* env = std::getenv("REPRO_JOBS")) {
    return std::atoi(env);
  }
  return 0;
}

namespace detail {
using CellKey = std::tuple<net::Network, middleware::Kind, int, int>;

inline std::map<CellKey, core::ExperimentResult>& cell_cache() {
  static std::map<CellKey, core::ExperimentResult> cache;
  return cache;
}

inline CellKey cell_key(const core::Platform& p, int nprocs) {
  return CellKey{p.network, p.middleware, p.cpus_per_node, nprocs};
}
}  // namespace detail

// Runs every not-yet-cached cell concurrently on a SweepRunner and fills
// the cache, so the subsequent run_cached() calls (which print the figure
// in a fixed order) are pure lookups. Results are identical to sequential
// execution; only wall-clock changes.
inline void prewarm(const std::vector<std::pair<core::Platform, int>>& cells) {
  auto& cache = detail::cell_cache();
  std::vector<core::ExperimentSpec> specs;
  for (const auto& [platform, nprocs] : cells) {
    if (cache.count(detail::cell_key(platform, nprocs)) > 0) continue;
    core::ExperimentSpec spec;
    spec.platform = platform;
    spec.nprocs = nprocs;
    spec.charmm.nsteps = options().steps;
    spec.engine = options().engine;
    specs.push_back(spec);
  }
  if (specs.empty()) return;
  const std::vector<core::ExperimentResult> results =
      core::run_experiments(prepared_system(), specs, default_jobs());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cache.emplace(detail::cell_key(specs[i].platform, specs[i].nprocs),
                  results[i]);
  }
}

inline const core::ExperimentResult& run_cached(const core::Platform& p,
                                                int nprocs) {
  auto& cache = detail::cell_cache();
  auto it = cache.find(detail::cell_key(p, nprocs));
  if (it == cache.end()) {
    core::ExperimentSpec spec;
    spec.platform = p;
    spec.nprocs = nprocs;
    spec.charmm.nsteps = options().steps;
    spec.engine = options().engine;
    it = cache.emplace(detail::cell_key(p, nprocs),
                       core::run_experiment(prepared_system(), spec))
             .first;
  }
  return it->second;
}

inline void print_header(const std::string& figure,
                         const std::string& caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("(%d MD steps of the 3552-atom myoglobin-like system, PME grid"
              " 80x36x48)\n",
              options().steps);
  std::printf("================================================================\n");
}

inline std::string fmt_breakdown_pct(const perf::Breakdown& b) {
  char buf[128];
  const double t = b.total() > 0 ? b.total() : 1.0;
  std::snprintf(buf, sizeof(buf), "%5.1f%% / %5.1f%% / %5.1f%%",
                100.0 * b.comp / t, 100.0 * b.comm / t, 100.0 * b.sync / t);
  return buf;
}

}  // namespace repro::bench
