// Shared scaffolding for the figure-regeneration binaries.
//
// Every bench binary prepares the paper's molecular system (built
// synthetically, then relaxed), sweeps the relevant factor, and prints the
// same rows/series the corresponding figure plots. Absolute values are
// simulator output (calibrated to the paper's scale); EXPERIMENTS.md
// records the paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "sysbuild/builder.hpp"
#include "util/table.hpp"

namespace repro::bench {

inline const sysbuild::BuiltSystem& prepared_system() {
  static const sysbuild::BuiltSystem sys = [] {
    std::fprintf(stderr,
                 "[bench] building + relaxing the 3552-atom system...\n");
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    charmm::relax_system(s, 100);
    return s;
  }();
  return sys;
}

inline const core::ExperimentResult& run_cached(const core::Platform& p,
                                                int nprocs) {
  using Key = std::tuple<net::Network, middleware::Kind, int, int>;
  static std::map<Key, core::ExperimentResult> cache;
  const Key key{p.network, p.middleware, p.cpus_per_node, nprocs};
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::ExperimentSpec spec;
    spec.platform = p;
    spec.nprocs = nprocs;
    it = cache.emplace(key, core::run_experiment(prepared_system(), spec))
             .first;
  }
  return it->second;
}

inline void print_header(const std::string& figure,
                         const std::string& caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("(10 MD steps of the 3552-atom myoglobin-like system, PME grid"
              " 80x36x48)\n");
  std::printf("================================================================\n");
}

inline std::string fmt_breakdown_pct(const perf::Breakdown& b) {
  char buf[128];
  const double t = b.total() > 0 ? b.total() : 1.0;
  std::snprintf(buf, sizeof(buf), "%5.1f%% / %5.1f%% / %5.1f%%",
                100.0 * b.comp / t, 100.0 * b.comm / t, 100.0 * b.sync / t);
  return buf;
}

}  // namespace repro::bench
