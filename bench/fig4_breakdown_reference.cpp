// Figure 4: percentage of computation, communication and synchronization
// in the classic energy calculation (a) and in the PME energy calculation
// (b), for the reference case.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header(
      "Figure 4",
      "percent computation / communication / synchronization, reference "
      "case");

  std::vector<std::pair<core::Platform, int>> cells;
  for (int p : core::paper_processor_counts()) {
    cells.emplace_back(core::reference_platform(), p);
  }
  bench::prewarm(cells);

  Table table({"procs", "classic comp/comm/sync", "pme comp/comm/sync"});
  for (int p : core::paper_processor_counts()) {
    const auto& r = bench::run_cached(core::reference_platform(), p);
    table.add_row({std::to_string(p),
                   bench::fmt_breakdown_pct(r.breakdown.classic_wall),
                   bench::fmt_breakdown_pct(r.breakdown.pme_wall)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& p2 = bench::run_cached(core::reference_platform(), 2);
  const auto& p8 = bench::run_cached(core::reference_platform(), 8);
  std::printf("paper checks:\n");
  std::printf("  classic overhead <10%% at 2 procs : %s (%.1f%%)\n",
              p2.breakdown.classic_wall.overhead_fraction() < 0.10 ? "yes"
                                                                   : "NO",
              100 * p2.breakdown.classic_wall.overhead_fraction());
  std::printf("  classic overhead >60%% at 8 procs : %s (%.1f%%)\n",
              p8.breakdown.classic_wall.overhead_fraction() > 0.60 ? "yes"
                                                                   : "NO",
              100 * p8.breakdown.classic_wall.overhead_fraction());
  std::printf("  pme overhead >50%% at 2 procs     : %s (%.1f%%)\n",
              p2.breakdown.pme_wall.overhead_fraction() > 0.50 ? "yes" : "NO",
              100 * p2.breakdown.pme_wall.overhead_fraction());
  std::printf("  pme overhead >75%% at 8 procs     : %s (%.1f%%)\n",
              p8.breakdown.pme_wall.overhead_fraction() > 0.75 ? "yes" : "NO",
              100 * p8.breakdown.pme_wall.overhead_fraction());

  // Where the overheads sit in the machine: per-resource utilization at
  // the reference point (p=8). This is the observability layer's view of
  // the same run — the numbers a trace/metrics export carries.
  const perf::RunMetrics& m = p8.metrics;
  std::printf("\nresource utilization at 8 procs (makespan %.3f s):\n",
              m.makespan);
  Table util({"resource", "busy (s)", "util %", "queue wait (s)", "acq"});
  for (const auto& r : m.resources) {
    if (r.acquisitions == 0) continue;
    util.add_row({r.name, Table::num(r.busy_time, 3),
                  Table::num(100.0 * r.utilization, 1),
                  Table::num(r.queue_wait, 3),
                  std::to_string(r.acquisitions)});
  }
  std::printf("%s", util.to_string().c_str());
  std::printf("  mean/max queue wait : %.4f / %.4f s\n", m.mean_queue_wait(),
              m.max_queue_wait());
  std::printf("  sender stall (sync) : %.4f s total\n", m.total_stall_time());
  if (const perf::ResourceMetrics* hot = m.incast_hot_spot()) {
    std::printf("  incast hot-spot     : %s (%.4f s queued)\n",
                hot->name.c_str(), hot->queue_wait);
  }
  return 0;
}
