// Figure 8: wall clock time (a) and total-energy-calculation breakdown (b)
// for the MPI and CMPI middlewares on TCP/IP over Gigabit Ethernet with
// uni-processor nodes.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 8",
                      "execution time and breakdown for different "
                      "middlewares (TCP/IP on Ethernet, uni-processor)");

  std::vector<std::pair<core::Platform, int>> cells;
  for (middleware::Kind kind :
       {middleware::Kind::kMpi, middleware::Kind::kCmpi}) {
    core::Platform platform;
    platform.middleware = kind;
    for (int p : core::paper_processor_counts()) {
      cells.emplace_back(platform, p);
    }
  }
  bench::prewarm(cells);

  Table table({"middleware", "procs", "classic (s)", "pme (s)", "total (s)",
               "total comp/comm/sync"});
  for (middleware::Kind kind :
       {middleware::Kind::kMpi, middleware::Kind::kCmpi}) {
    core::Platform platform;
    platform.middleware = kind;
    for (int p : core::paper_processor_counts()) {
      const auto& r = bench::run_cached(platform, p);
      table.add_row({middleware::to_string(kind), std::to_string(p),
                     Table::num(r.classic_seconds(), 2),
                     Table::num(r.pme_seconds(), 2),
                     Table::num(r.total_seconds(), 2),
                     bench::fmt_breakdown_pct(r.breakdown.total_wall())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper checks:\n");
  core::Platform cmpi;
  cmpi.middleware = middleware::Kind::kCmpi;
  const auto& c4 = bench::run_cached(cmpi, 4);
  const auto& c8 = bench::run_cached(cmpi, 8);
  std::printf("  CMPI times increase from 4 to 8 procs      : %s "
              "(classic %.2f -> %.2f s, pme %.2f -> %.2f s)\n",
              (c8.classic_seconds() > c4.classic_seconds() &&
               c8.pme_seconds() > c4.pme_seconds() * 0.95)
                  ? "yes"
                  : "NO",
              c4.classic_seconds(), c8.classic_seconds(), c4.pme_seconds(),
              c8.pme_seconds());
  const auto& m8 = bench::run_cached(core::reference_platform(), 8);
  std::printf("  slowdown driven by synchronization ops     : %s "
              "(sync at 8p: CMPI %.2f s vs MPI %.2f s)\n",
              c8.breakdown.total_wall().sync >
                      4.0 * m8.breakdown.total_wall().sync
                  ? "yes"
                  : "NO",
              c8.breakdown.total_wall().sync,
              m8.breakdown.total_wall().sync);
  return 0;
}
