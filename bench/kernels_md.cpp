// Microbenchmarks for the MD kernels (regression guards; not a paper
// figure). The non-bonded kernel and the list builder run on a realistic
// water box at bulk density.
#include <benchmark/benchmark.h>

#include "md/bonded.hpp"
#include "md/neighbor.hpp"
#include "md/nonbonded.hpp"
#include "sysbuild/builder.hpp"

namespace {

using namespace repro;

const sysbuild::BuiltSystem& water() {
  static const sysbuild::BuiltSystem sys = sysbuild::build_water_box(8);
  return sys;
}

void BM_NeighborListBuild(benchmark::State& state) {
  const auto& sys = water();
  md::NeighborList nbl(9.0, 2.0);
  for (auto _ : state) {
    nbl.build(sys.topo, sys.box, sys.positions);
    benchmark::DoNotOptimize(nbl.npairs());
  }
  state.counters["pairs"] = static_cast<double>(nbl.npairs());
}
BENCHMARK(BM_NeighborListBuild)->Unit(benchmark::kMillisecond);

void BM_NonbondedKernel(benchmark::State& state, util::KernelKind kind) {
  const auto& sys = water();
  md::NonbondedOptions opts;
  opts.cutoff = 9.0;
  opts.switch_on = 7.0;
  opts.elec = md::NonbondedOptions::Elec::kEwaldDirect;
  opts.kernel = kind;
  opts.table = md::build_pair_table(sys.topo);
  md::NeighborList nbl(opts.cutoff, 2.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  std::vector<util::Vec3> forces(
      static_cast<std::size_t>(sys.topo.natoms()));
  std::size_t pairs = 0;
  for (auto _ : state) {
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    md::EnergyTerms e;
    pairs = md::nonbonded_energy(sys.topo, sys.box, sys.positions, nbl,
                                 opts, forces, e)
                .pairs_listed;
    benchmark::DoNotOptimize(e.lj);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pairs));
}
BENCHMARK_CAPTURE(BM_NonbondedKernel, scalar, util::KernelKind::kScalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NonbondedKernel, simd, util::KernelKind::kSimd)
    ->Unit(benchmark::kMillisecond);

void BM_BondedKernel(benchmark::State& state) {
  const auto sys = sysbuild::build_test_chain(500, 9);
  std::vector<util::Vec3> forces(
      static_cast<std::size_t>(sys.topo.natoms()));
  for (auto _ : state) {
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    md::EnergyTerms e;
    md::bonded_energy(sys.topo, sys.box, sys.positions, forces, e);
    benchmark::DoNotOptimize(e.bond);
  }
}
BENCHMARK(BM_BondedKernel);

void BM_SystemBuilder(benchmark::State& state) {
  for (auto _ : state) {
    const auto sys = sysbuild::build_myoglobin_like(7);
    benchmark::DoNotOptimize(sys.topo.natoms());
  }
}
BENCHMARK(BM_SystemBuilder)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
