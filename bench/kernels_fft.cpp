// Microbenchmarks for the FFT substrate (regression guards; not a paper
// figure). Sizes match the paper's PME grid dimensions 80 x 36 x 48.
#include <benchmark/benchmark.h>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace {

using repro::fft::Complex;

std::vector<Complex> random_signal(std::size_t n) {
  repro::util::Rng rng(n);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

void BM_Fft1D(benchmark::State& state, repro::util::KernelKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  repro::fft::Fft1D plan(n, kind);
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK_CAPTURE(BM_Fft1D, scalar, repro::util::KernelKind::kScalar)
    ->Arg(36)->Arg(48)->Arg(80)->Arg(97)->Arg(128);
BENCHMARK_CAPTURE(BM_Fft1D, simd, repro::util::KernelKind::kSimd)
    ->Arg(36)->Arg(48)->Arg(80)->Arg(97)->Arg(128);

void BM_Fft1DInverseRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  repro::fft::Fft1D plan(n);
  auto data = random_signal(n);
  for (auto _ : state) {
    plan.forward(data.data());
    plan.inverse(data.data());
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft1DInverseRoundTrip)->Arg(80);

void BM_Fft3DPaperGrid(benchmark::State& state, repro::util::KernelKind kind) {
  repro::fft::Fft3D plan(80, 36, 48, kind);
  auto grid = random_signal(80 * 36 * 48);
  for (auto _ : state) {
    plan.forward(grid.data());
    benchmark::DoNotOptimize(grid.data());
  }
  state.SetItemsProcessed(state.iterations() * 80 * 36 * 48);
}
BENCHMARK_CAPTURE(BM_Fft3DPaperGrid, scalar, repro::util::KernelKind::kScalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fft3DPaperGrid, simd, repro::util::KernelKind::kSimd)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
