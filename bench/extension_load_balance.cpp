// Extension: measurement-driven load balancing of the spatial
// decomposition (overdecomposition into migratable work units).
//
// The paper's spatial strategy (the one CHARMM lacked) partitions cells
// statically; §4's cost variability (Figure 7) and any heterogeneity
// turn that static partition into a per-step wait on the slowest rank.
// This bench quantifies what the PR's balancer (--decomp=spatial:ldb=...)
// buys back:
//
//   Part 1 injects node-level perturbations with the hand-tuned jitter
//   DISABLED (the extension_fault_tolerance discipline) and measures how
//   much of the straggler-induced step-time inflation each policy
//   recovers. A degraded *link* rides along as the honest negative: the
//   balancer measures compute time, so network-side faults are invisible
//   to it and should not be absorbed.
//
//   Part 2 reruns the conclusion bench's classic scaling sweep with the
//   balancer on, asking whether the static-imbalance efficiency limit
//   moves when the cold-start map weights cells by pair cost and the
//   rebuild-time rebalancer evens out the residue.
#include "figure_common.hpp"

#include "charmm/decomp_spec.hpp"
#include "net/faults.hpp"

using namespace repro;
using repro::util::Table;

namespace {

core::ExperimentSpec lb_spec(const char* decomp, int nprocs) {
  core::ExperimentSpec spec;
  spec.platform = core::reference_platform();
  spec.nprocs = nprocs;
  spec.charmm.use_pme = false;
  spec.charmm.nsteps = bench::options().steps;
  // Rebalance opportunities every other step: the balancer only acts at
  // neighbor-list rebuilds, and the short golden runs must cross some.
  spec.charmm.list_rebuild_interval = 2;
  spec.charmm.decomp = charmm::parse_decomp_spec(decomp);
  spec.engine = bench::options().engine;
  net::NetworkParams params = net::params_for(spec.platform.network);
  params.jitter_prob_per_rank = 0.0;  // isolate the injected perturbation
  spec.network_params = params;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header(
      "Extension: load balancing",
      "migratable work units + measurement-driven rebalancing "
      "(8 processes, jitter off, rebuilds every 2 steps)");

  const int nprocs = 8;
  struct Fault {
    const char* label;
    const char* spec_text;
  };
  // Node 6 owns the static map's heaviest domain (the 2.1x-imbalance
  // rank), so slowing it lands squarely on the ldb=off critical path.
  // Node 0 is a lightly-loaded rank: slowing it hides inside the static
  // map's slack but forces the *balanced* map to adapt — the inverse
  // case.
  const std::vector<Fault> faults{
      {"none", ""},
      {"straggler node 6 (1.5x)", "straggler=6,x=1.5"},
      {"straggler node 6 (2x)", "straggler=6,x=2"},
      {"straggler node 0 (2x)", "straggler=0,x=2"},
      {"degraded link 0-1 (bw/10)", "degrade=0-1,bw=0.1"},
  };
  const std::vector<const char*> policies{
      "spatial", "spatial:ldb=greedy", "spatial:ldb=refine"};
  const std::vector<const char*> policy_labels{"off", "greedy", "refine"};

  std::vector<core::ExperimentSpec> specs;
  for (const Fault& f : faults) {
    for (const char* policy : policies) {
      core::ExperimentSpec spec = lb_spec(policy, nprocs);
      if (f.spec_text[0] != '\0') {
        spec.faults = net::parse_fault_spec(f.spec_text);
      }
      specs.push_back(spec);
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  // Inflation is measured against the same policy's fault-free row, so a
  // policy's own overhead (handoffs, different cold-start map) cancels
  // and "recovered" isolates the adaptation.
  Table table({"fault", "ldb", "total (s)", "inflation (s)", "recovered",
               "units moved", "imbalance"});
  std::vector<double> baseline(policies.size(), 0.0);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    double inflation_off = 0.0;
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const core::ExperimentResult& r = results[fi * policies.size() + pi];
      const double total = r.total_seconds();
      if (fi == 0) baseline[pi] = total;
      const double inflation = total - baseline[pi];
      if (pi == 0) inflation_off = inflation;
      std::string recovered = "-";
      if (fi > 0 && pi > 0 && inflation_off > 0.0) {
        recovered = Table::pct(1.0 - inflation / inflation_off);
      }
      const double imb = r.metrics.compute_imbalance.factor();
      table.add_row({faults[fi].label, policy_labels[pi],
                     Table::num(total, 3),
                     fi == 0 ? "-" : Table::num(inflation, 3), recovered,
                     std::to_string(r.units_moved),
                     imb > 0.0 ? Table::num(imb, 2) : "-"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nReading: straggling the statically-overloaded node (6) inflates\n"
      "the ldb=off rows by the full extra wait on the critical path; the\n"
      "balancer rows shed work units off that node after the first\n"
      "rebuild and recover most of the inflation ('recovered' is the\n"
      "fraction of ldb=off's inflation the policy eliminated, each\n"
      "policy measured against its own fault-free baseline). Straggling\n"
      "a lightly-loaded node (0) is the inverse case: the static map's\n"
      "slack hides it (zero ldb=off inflation) while the balanced map\n"
      "must adapt — the cost of having no slack anywhere. The\n"
      "degraded-link row is the designed negative: the balancer measures\n"
      "compute time, a slow *link* is invisible to it, and its rows\n"
      "recover nothing — network faults need the fault-tolerance\n"
      "machinery, not load balancing.\n");

  // --- Part 2: does the balancer move the static-imbalance limit? -------
  // The conclusion bench's classic sweep showed the spatial strategy's
  // efficiency limit is set by how evenly 72 cutoff-sized cells split
  // across ranks. Rerun that sweep (Myrinet, classic) with the balancer.
  std::printf(
      "\n================================================================\n"
      "Does the balancer move the static-imbalance efficiency limit?\n"
      "(classic calculation, Myrinet GM, single switch)\n"
      "================================================================\n");

  const std::vector<int> counts =
      bench::options().smoke ? std::vector<int>{1, 2, 8}
                             : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<core::ExperimentSpec> specs2;
  for (const char* policy : policies) {
    for (int p : counts) {
      core::ExperimentSpec spec = lb_spec(policy, p);
      spec.platform.network = net::Network::kMyrinetGM;
      spec.network_params.reset();  // stock Myrinet model, jitter included
      specs2.push_back(spec);
    }
  }
  const std::vector<core::ExperimentResult> results2 = core::run_experiments(
      bench::prepared_system(), specs2, bench::default_jobs());

  Table table2({"ldb", "procs", "total (s)", "speedup", "efficiency",
                "imbalance", "units moved"});
  std::size_t idx = 0;
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    double seq = 0.0;
    for (int p : counts) {
      const core::ExperimentResult& r = results2[idx++];
      const double total = r.total_seconds();
      if (p == 1) seq = total;
      const double imb = r.metrics.compute_imbalance.factor();
      table2.add_row({policy_labels[pi], std::to_string(p),
                      Table::num(total, 3), Table::num(seq / total, 2),
                      Table::pct(seq / total / p),
                      imb > 0.0 ? Table::num(imb, 2) : "-",
                      std::to_string(r.units_moved)});
    }
  }
  std::printf("%s", table2.to_string().c_str());
  std::printf(
      "\nReading: the balancer's cold-start map already packs by pair\n"
      "cost instead of atom count, and the rebuild-time rebalancer can\n"
      "only shuffle whole units — so the imbalance column tightens\n"
      "toward 1.0 where the unit pool is deep (small p) and converges to\n"
      "the ldb=off figure where every rank holds only a cell or two\n"
      "(large p): overdecomposition runs out of granularity exactly\n"
      "where strong scaling runs out of atoms.\n");
  return 0;
}
