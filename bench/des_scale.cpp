// DES scalability benchmark: thousands of simulated ranks.
//
// The paper's cluster stops at 16 processors; this benchmark drives the
// discrete-event engine itself to p=4096 fiber ranks to pin the
// scheduler's scaling behaviour (indexed ready heap, pooled fiber stacks,
// sparse channel accounting — see docs/ARCHITECTURE.md).
//
// Two sections:
//   throughput — a ring sendrecv workload (every rank exchanges with both
//       neighbors each step, then computes) on the single-switch fabric,
//       reporting engine events/sec versus p. The workload is message-
//       dominated, so events/sec measures scheduler+network bookkeeping
//       cost, not MD kernels.
//   fabric     — a fig5-style comparison on a 256-node cluster: allreduce
//       and neighbor-exchange virtual completion times on the single
//       switch versus a two-level fat-tree (full bisection and 4:1
//       oversubscribed) versus a derived 2-D torus. Simulated seconds, so
//       the numbers are exactly reproducible.
//
// usage: des_scale [--smoke] [--steps=N] [--json=FILE]
//   --smoke   CI mode: p=256 on a fat-tree, seconds of wall clock.
//   --json    write BENCH_des_scale.json-style output (includes the
//             recorded pre-change baseline for the speedup table).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "net/topology.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"

using namespace repro;

namespace {

double max_rss_mb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// Recorded pre-change baseline: same ring workload (64 steps, the
// default below), same single-vCPU container, measured on the
// linear-scan engine with dense channel arrays and glibc swapcontext
// immediately before this change. regen.sh re-measures only the "after"
// numbers; the baseline is a constant of record (the pre-change engine
// no longer exists in the tree).
struct BaselinePoint {
  int p;
  double events_per_sec;
};
constexpr BaselinePoint kBaseline[] = {
    {512, 160264.0},
    {1024, 85520.0},
    {2048, 52673.0},
    {4096, 25237.0},
};
constexpr double kBaselineRssMb4096 = 669.0;

double baseline_for(int p) {
  for (const auto& b : kBaseline) {
    if (b.p == p) return b.events_per_sec;
  }
  return 0.0;
}

struct RunStats {
  int p = 0;
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  double wall = 0.0;
  double events_per_sec = 0.0;
  double virtual_makespan = 0.0;  // max rank virtual clock at completion
  double rss_mb = 0.0;
};

// Ring exchange: rank r sends to r+1 and receives from r-1 each step,
// then advances its clock by a small compute cost. Message-dominated, so
// events/sec isolates the engine+network hot path.
RunStats run_ring(int p, int steps, const net::TopologySpec& topo) {
  net::ClusterConfig cfg;
  cfg.nranks = p;
  cfg.cpus_per_node = 1;
  cfg.network = net::Network::kScoreGigE;
  cfg.topology = topo;
  net::ClusterNetwork net(cfg);
  sim::Engine engine(p, sim::EngineBackend::kFiber);
  std::vector<perf::RankRecorder> recorders(static_cast<std::size_t>(p));
  std::vector<double> finish(static_cast<std::size_t>(p), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, net, recorders[static_cast<std::size_t>(ctx.rank())]);
    const int r = ctx.rank();
    const int n = ctx.size();
    double out[8] = {static_cast<double>(r)};
    double in[8] = {};
    for (int s = 0; s < steps; ++s) {
      comm.sendrecv((r + 1) % n, 7, out, sizeof out, (r - 1 + n) % n, 7, in,
                    sizeof in);
      comm.compute(1e-6);
    }
    finish[static_cast<std::size_t>(r)] = ctx.now();
  });
  const auto t1 = std::chrono::steady_clock::now();
  RunStats st;
  st.p = p;
  st.events = engine.events_processed();
  st.switches = engine.context_switches();
  st.wall = std::chrono::duration<double>(t1 - t0).count();
  st.events_per_sec =
      st.wall > 0 ? static_cast<double>(st.events) / st.wall : 0.0;
  for (double f : finish) st.virtual_makespan = std::max(st.virtual_makespan, f);
  st.rss_mb = max_rss_mb();
  return st;
}

// Fig5-style collective patterns on one fabric.
enum class Pattern { kAllreduce, kNeighbor };

RunStats run_pattern(int p, int iters, Pattern pattern,
                     const net::TopologySpec& topo) {
  net::ClusterConfig cfg;
  cfg.nranks = p;
  cfg.cpus_per_node = 1;
  cfg.network = net::Network::kScoreGigE;
  cfg.topology = topo;
  net::ClusterNetwork net(cfg);
  sim::Engine engine(p, sim::EngineBackend::kFiber);
  std::vector<perf::RankRecorder> recorders(static_cast<std::size_t>(p));
  std::vector<double> finish(static_cast<std::size_t>(p), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, net, recorders[static_cast<std::size_t>(ctx.rank())]);
    const int r = ctx.rank();
    const int n = ctx.size();
    std::vector<double> data(64, static_cast<double>(r));
    std::vector<double> out(1024, static_cast<double>(r));
    std::vector<double> in(1024, 0.0);
    for (int s = 0; s < iters; ++s) {
      if (pattern == Pattern::kAllreduce) {
        comm.allreduce_sum(data.data(), data.size());
      } else {
        comm.sendrecv((r + 1) % n, 3, out.data(),
                      out.size() * sizeof(double), (r - 1 + n) % n, 3,
                      in.data(), in.size() * sizeof(double));
      }
      comm.compute(5e-6);
    }
    finish[static_cast<std::size_t>(r)] = ctx.now();
  });
  const auto t1 = std::chrono::steady_clock::now();
  RunStats st;
  st.p = p;
  st.events = engine.events_processed();
  st.switches = engine.context_switches();
  st.wall = std::chrono::duration<double>(t1 - t0).count();
  st.events_per_sec =
      st.wall > 0 ? static_cast<double>(st.events) / st.wall : 0.0;
  for (double f : finish) st.virtual_makespan = std::max(st.virtual_makespan, f);
  st.rss_mb = max_rss_mb();
  return st;
}

const char* pattern_name(Pattern p) {
  return p == Pattern::kAllreduce ? "allreduce" : "neighbor-exchange";
}

struct FabricResult {
  std::string topology;
  Pattern pattern;
  double virtual_seconds = 0.0;  // per iteration
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int steps = 64;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = std::atoi(arg.c_str() + 8);
      if (steps < 1) {
        std::fprintf(stderr, "bad --steps value: %s\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown option: %s (supported: --smoke --steps=N "
                   "--json=FILE)\n",
                   arg.c_str());
      return 2;
    }
  }

  std::printf("DES scalability: ring sendrecv throughput vs p (fiber "
              "backend, ScoreGigE, %d steps)\n",
              steps);
  std::printf("%6s %12s %12s %9s %12s %10s %9s\n", "p", "events",
              "switches", "wall_s", "events/s", "speedup", "rss_MB");

  std::vector<RunStats> throughput;
  const std::vector<int> ps =
      smoke ? std::vector<int>{256} : std::vector<int>{512, 1024, 2048, 4096};
  for (int p : ps) {
    // Smoke runs the fat-tree so CI exercises the hop-resource path; the
    // full sweep measures the single switch (the baseline's condition).
    net::TopologySpec topo;
    if (smoke) topo = net::parse_topology_spec("fattree:radix=16,over=4");
    const RunStats st = run_ring(p, steps, topo);
    const double base = baseline_for(p);
    throughput.push_back(st);
    std::printf("%6d %12llu %12llu %9.3f %12.0f %9.2fx %9.1f\n", st.p,
                static_cast<unsigned long long>(st.events),
                static_cast<unsigned long long>(st.switches), st.wall,
                st.events_per_sec,
                base > 0 ? st.events_per_sec / base : 0.0, st.rss_mb);
    std::fflush(stdout);
  }

  std::printf("\nfabric comparison: 256 nodes, virtual seconds per "
              "iteration (simulated time, exactly reproducible)\n");
  std::printf("%-26s %-18s %14s\n", "topology", "pattern", "virt_s/iter");
  std::vector<FabricResult> fabric;
  const int fp = 256;
  const int fiters = smoke ? 4 : 8;
  const std::vector<std::string> topos =
      smoke ? std::vector<std::string>{"single", "fattree:radix=16,over=4"}
            : std::vector<std::string>{"single", "fattree:radix=16,over=1",
                                       "fattree:radix=16,over=4", "torus"};
  for (const std::string& tname : topos) {
    const net::TopologySpec topo = net::parse_topology_spec(tname);
    for (Pattern pat : {Pattern::kAllreduce, Pattern::kNeighbor}) {
      const RunStats st = run_pattern(fp, fiters, pat, topo);
      FabricResult fr;
      fr.topology = net::to_string(topo);
      fr.pattern = pat;
      fr.virtual_seconds = st.virtual_makespan / fiters;
      fabric.push_back(fr);
      std::printf("%-26s %-18s %14.6f\n", fr.topology.c_str(),
                  pattern_name(pat), fr.virtual_seconds);
      std::fflush(stdout);
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(
        f,
        "  \"benchmark\": \"DES scalability (this PR): indexed ready heap + "
        "pooled fiber stacks + sparse channels; ring sendrecv, fiber "
        "backend, ScoreGigE, %d steps\",\n",
        steps);
    std::fprintf(f,
                 "  \"machine\": { \"hardware_threads\": 1, \"note\": "
                 "\"single-vCPU container, same box as the recorded "
                 "baseline\" },\n");
    std::fprintf(f,
                 "  \"baseline_note\": \"pre-change engine (O(p) ready scan, "
                 "dense p^2 channel arrays) measured on this box on the "
                 "identical workload; %.0f MB RSS at p=4096\",\n",
                 kBaselineRssMb4096);
    std::fprintf(f, "  \"throughput\": [\n");
    for (std::size_t i = 0; i < throughput.size(); ++i) {
      const RunStats& st = throughput[i];
      const double base = baseline_for(st.p);
      std::fprintf(
          f,
          "    { \"p\": %d, \"events\": %llu, \"context_switches\": %llu, "
          "\"wall_s\": %.3f, \"events_per_sec\": %.0f, "
          "\"baseline_events_per_sec\": %.0f, \"speedup\": %.2f, "
          "\"rss_mb\": %.1f }%s\n",
          st.p, static_cast<unsigned long long>(st.events),
          static_cast<unsigned long long>(st.switches), st.wall,
          st.events_per_sec, base,
          base > 0 ? st.events_per_sec / base : 0.0, st.rss_mb,
          i + 1 < throughput.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"fabric_256_nodes\": {\n    \"note\": \"virtual "
                 "seconds per iteration on 256 nodes (simulated time, "
                 "exactly reproducible); allreduce = 64 doubles, "
                 "neighbor-exchange = 8 KiB ring sendrecv\",\n"
                 "    \"results\": [\n");
    for (std::size_t i = 0; i < fabric.size(); ++i) {
      std::fprintf(f,
                   "      { \"topology\": \"%s\", \"pattern\": \"%s\", "
                   "\"virtual_s_per_iter\": %.9f }%s\n",
                   fabric[i].topology.c_str(), pattern_name(fabric[i].pattern),
                   fabric[i].virtual_seconds,
                   i + 1 < fabric.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
