// Extension study: coherency barriers vs. none (the §2.3 question).
//
// The paper notes that in earlier work "decoupling computation,
// synchronization and data transfer resulted in better performance for
// certain compiled parallel programs", but that "it can not be concluded
// if overlap of the computation and the communication is beneficial or
// detrimental to performance and scalability of CHARMM on a particular
// platform". This bench runs the energy calculation with CHARMM's
// coherency barriers on and off, per network, and shows where the skew
// goes: with barriers it is visible as synchronization; without, it hides
// inside the data operations — and the wall-clock difference is small,
// because the barriers absorb waits that the reductions would otherwise
// pay anyway.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

core::ExperimentSpec barrier_spec(net::Network network, int p,
                                  bool barriers) {
  core::ExperimentSpec spec;
  spec.platform.network = network;
  spec.nprocs = p;
  spec.charmm.coherency_barriers = barriers;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Extension (§2.3)",
                      "coherency barriers vs decoupled execution");

  std::vector<core::ExperimentSpec> specs;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
    for (bool barriers : {true, false}) {
      for (int p : {4, 8}) {
        specs.push_back(barrier_spec(network, p, barriers));
      }
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"network", "barriers", "procs", "total (s)", "comm (s)",
               "sync (s)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& r = results[i];
    const perf::Breakdown total = r.breakdown.total_wall();
    table.add_row({net::to_string(specs[i].platform.network),
                   specs[i].charmm.coherency_barriers ? "on" : "off",
                   std::to_string(specs[i].nprocs),
                   Table::num(r.total_seconds(), 2),
                   Table::num(total.comm, 2), Table::num(total.sync, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // TCP at 8 procs with barriers on/off: rows 1 and 3 of the TCP block.
  const auto& on = results[1];
  const auto& off = results[3];
  std::printf("paper check: removing the barriers reclassifies skew from\n"
              "synchronization (%.2f -> %.2f s) into the data operations\n"
              "(comm %.2f -> %.2f s) without a dramatic wall-clock change\n"
              "(%.2f -> %.2f s) — consistent with the paper's caution that\n"
              "the benefit of decoupling is platform-dependent.\n",
              on.breakdown.total_wall().sync, off.breakdown.total_wall().sync,
              on.breakdown.total_wall().comm, off.breakdown.total_wall().comm,
              on.total_seconds(), off.total_seconds());
  return 0;
}
