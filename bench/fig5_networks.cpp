// Figure 5: wall clock time of the total energy calculation for the three
// networks (TCP/IP on Gigabit Ethernet, SCore on Gigabit Ethernet,
// Myrinet), MPI middleware, uni-processor nodes.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 5",
                      "execution time of the total energy calculation for "
                      "different networks (MPI middleware, uni-processor)");

  std::vector<std::pair<core::Platform, int>> cells;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : core::paper_processor_counts()) {
      cells.emplace_back(platform, p);
    }
  }
  bench::prewarm(cells);

  Table table({"network", "procs", "classic (s)", "pme (s)", "total (s)",
               "speedup"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE,
        net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    const double seq =
        bench::run_cached(platform, 1).total_seconds();
    for (int p : core::paper_processor_counts()) {
      const auto& r = bench::run_cached(platform, p);
      table.add_row({net::to_string(network), std::to_string(p),
                     Table::num(r.classic_seconds(), 2),
                     Table::num(r.pme_seconds(), 2),
                     Table::num(r.total_seconds(), 2),
                     Table::num(seq / r.total_seconds(), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper checks:\n");
  core::Platform tcp, score, myri;
  score.network = net::Network::kScoreGigE;
  myri.network = net::Network::kMyrinetGM;
  const double t8 = bench::run_cached(tcp, 8).total_seconds();
  const double s8 = bench::run_cached(score, 8).total_seconds();
  const double m8 = bench::run_cached(myri, 8).total_seconds();
  std::printf("  better scalability for low-latency networks : %s "
              "(TCP %.2f > SCore %.2f > Myrinet %.2f at 8 procs)\n",
              (t8 > s8 && s8 > m8) ? "yes" : "NO", t8, s8, m8);
  return 0;
}
