// Ablation: which modeled mechanism produces which observed effect?
//
// DESIGN.md calls out four behavioural ingredients of the TCP/GigE model:
//   (1) per-packet host/interrupt costs,
//   (2) flow-control jitter from 4 processors on,
//   (3) the half-duplex penalty on bidirectional exchanges,
//   (4) the SMP interrupt-routing collapse on dual-CPU nodes.
// This bench disables them one at a time on the reference case and shows
// how the paper's signature effects react — evidence that each figure
// feature is driven by the intended mechanism, not an accident of
// calibration.
//
// It also reproduces the §4.1 textual claim that Fast Ethernet behaves
// almost like Gigabit Ethernet for this workload.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

namespace {

core::ExperimentSpec variant_spec(const net::NetworkParams& params,
                                  int nprocs, int cpus_per_node = 1) {
  core::ExperimentSpec spec;
  spec.nprocs = nprocs;
  spec.platform.cpus_per_node = cpus_per_node;
  spec.network_params = params;
  // This bench predates the sweep path and seeded the network directly
  // with ClusterConfig's default; keep that seed so the table is stable.
  spec.seed = net::ClusterConfig{}.seed;
  return spec;
}

double spread_of(const core::ExperimentResult& r) {
  const auto& cs = r.breakdown.comm_speed;
  return (cs.max_mb_per_s - cs.min_mb_per_s) /
         std::max(cs.avg_mb_per_s, 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Ablation",
                      "network-model mechanisms vs the paper's effects "
                      "(reference platform unless noted)");

  const net::NetworkParams base = net::params_for(net::Network::kTcpGigE);

  net::NetworkParams no_packets = base;
  no_packets.packet_cost_send = 0.0;
  no_packets.packet_cost_recv = 0.0;

  net::NetworkParams no_jitter = base;
  no_jitter.jitter_prob_per_rank = 0.0;

  net::NetworkParams no_duplex = base;
  no_duplex.duplex_exchange_factor = 1.0;

  net::NetworkParams rndv = base;
  rndv.rendezvous_threshold = 64 * 1024;  // MPICH-style large-message mode

  net::NetworkParams no_smp = base;
  no_smp.smp_bandwidth_factor = 1.0;
  no_smp.smp_host_penalty = 1.0;
  no_smp.smp_compute_penalty = 1.0;

  const std::vector<const char*> names{
      "full model",        "- per-packet costs",     "- flow-control jitter",
      "- half-duplex penalty", "+ rendezvous >=64KB", "full model (dual)",
      "- SMP penalties (dual)"};
  std::vector<core::ExperimentSpec> specs{
      variant_spec(base, 8, 1),       variant_spec(no_packets, 8, 1),
      variant_spec(no_jitter, 8, 1),  variant_spec(no_duplex, 8, 1),
      variant_spec(rndv, 8, 1),       variant_spec(base, 8, 2),
      variant_spec(no_smp, 8, 2)};

  // The §4.1 Fast-Ethernet comparison rides in the same sweep.
  const net::NetworkParams faste =
      net::params_for(net::Network::kTcpFastEthernet);
  const std::size_t fe_begin = specs.size();
  for (int p : {2, 4, 8}) {
    specs.push_back(variant_spec(base, p, 1));
    specs.push_back(variant_spec(faste, p, 1));
  }

  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"variant", "procs", "classic (s)", "pme (s)", "total (s)",
               "speed spread"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    table.add_row({names[i], std::to_string(specs[i].nprocs),
                   Table::num(r.classic_seconds(), 2),
                   Table::num(r.pme_seconds(), 2),
                   Table::num(r.total_seconds(), 2),
                   Table::pct(spread_of(r))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Fast Ethernet vs Gigabit Ethernet (the §4.1 observation):\n");
  Table fe({"network", "procs", "total (s)"});
  std::size_t idx = fe_begin;
  for (int p : {2, 4, 8}) {
    const double ge = results[idx++].total_seconds();
    const double fa = results[idx++].total_seconds();
    fe.add_row({"TCP/IP on GigE", std::to_string(p), Table::num(ge, 2)});
    fe.add_row({"TCP/IP on FastE", std::to_string(p), Table::num(fa, 2)});
  }
  std::printf("%s\n", fe.to_string().c_str());
  std::printf("reading the ablation:\n");
  std::printf("  - removing jitter restores stable (low-spread) transfers;\n");
  std::printf("  - removing the duplex penalty mostly rescues PME (its\n");
  std::printf("    transposes are bidirectional exchanges);\n");
  std::printf("  - removing the SMP penalties makes dual nodes behave like\n");
  std::printf("    uni nodes, erasing the Figure 9a pathology;\n");
  std::printf("  - Fast Ethernet tracks GigE closely: the protocol path,\n");
  std::printf("    not the wire, limits this workload (§4.1);\n");
  std::printf("  - rendezvous for large messages couples senders to the\n");
  std::printf("    receivers' progress, adding wait time on top of eager\n");
  std::printf("    transfers.\n");
  return 0;
}
