// Ablation: which modeled mechanism produces which observed effect?
//
// DESIGN.md calls out four behavioural ingredients of the TCP/GigE model:
//   (1) per-packet host/interrupt costs,
//   (2) flow-control jitter from 4 processors on,
//   (3) the half-duplex penalty on bidirectional exchanges,
//   (4) the SMP interrupt-routing collapse on dual-CPU nodes.
// This bench disables them one at a time on the reference case and shows
// how the paper's signature effects react — evidence that each figure
// feature is driven by the intended mechanism, not an accident of
// calibration.
//
// It also reproduces the §4.1 textual claim that Fast Ethernet behaves
// almost like Gigabit Ethernet for this workload.
#include "figure_common.hpp"

#include "perf/report.hpp"
#include "sim/engine.hpp"

using namespace repro;
using repro::util::Table;

namespace {

struct Outcome {
  double classic_s = 0.0;
  double pme_s = 0.0;
  double spread = 0.0;  // comm-speed (max-min)/avg
  double total() const { return classic_s + pme_s; }
};

Outcome run_with(const net::NetworkParams& params, int nprocs,
                 int cpus_per_node = 1) {
  net::ClusterConfig config;
  config.nranks = nprocs;
  config.cpus_per_node = cpus_per_node;
  net::ClusterNetwork network(config, params);
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nprocs));
  sim::Engine engine(nprocs);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, network,
                   recorders[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    charmm::CharmmConfig charmm_config;
    charmm::run_charmm_rank(bench::prepared_system(), charmm_config, mw);
  });
  const perf::RunBreakdown b = perf::aggregate(recorders, cpus_per_node);
  Outcome out;
  out.classic_s = b.classic_wall.total();
  out.pme_s = b.pme_wall.total();
  out.spread = (b.comm_speed.max_mb_per_s - b.comm_speed.min_mb_per_s) /
               std::max(b.comm_speed.avg_mb_per_s, 1e-9);
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "network-model mechanisms vs the paper's effects "
                      "(reference platform unless noted)");

  const net::NetworkParams base = net::params_for(net::Network::kTcpGigE);

  Table table({"variant", "procs", "classic (s)", "pme (s)", "total (s)",
               "speed spread"});
  auto add = [&](const char* name, const net::NetworkParams& params, int p,
                 int cpus) {
    const Outcome o = run_with(params, p, cpus);
    table.add_row({name, std::to_string(p), Table::num(o.classic_s, 2),
                   Table::num(o.pme_s, 2), Table::num(o.total(), 2),
                   Table::pct(o.spread)});
  };

  add("full model", base, 8, 1);

  net::NetworkParams no_packets = base;
  no_packets.packet_cost_send = 0.0;
  no_packets.packet_cost_recv = 0.0;
  add("- per-packet costs", no_packets, 8, 1);

  net::NetworkParams no_jitter = base;
  no_jitter.jitter_prob_per_rank = 0.0;
  add("- flow-control jitter", no_jitter, 8, 1);

  net::NetworkParams no_duplex = base;
  no_duplex.duplex_exchange_factor = 1.0;
  add("- half-duplex penalty", no_duplex, 8, 1);

  net::NetworkParams rndv = base;
  rndv.rendezvous_threshold = 64 * 1024;  // MPICH-style large-message mode
  add("+ rendezvous >=64KB", rndv, 8, 1);

  add("full model (dual)", base, 8, 2);
  net::NetworkParams no_smp = base;
  no_smp.smp_bandwidth_factor = 1.0;
  no_smp.smp_host_penalty = 1.0;
  no_smp.smp_compute_penalty = 1.0;
  add("- SMP penalties (dual)", no_smp, 8, 2);

  std::printf("%s\n", table.to_string().c_str());

  // The §4.1 Fast-Ethernet claim.
  std::printf("Fast Ethernet vs Gigabit Ethernet (the §4.1 observation):\n");
  Table fe({"network", "procs", "total (s)"});
  for (int p : {2, 4, 8}) {
    const Outcome ge = run_with(base, p, 1);
    const Outcome fa =
        run_with(net::params_for(net::Network::kTcpFastEthernet), p, 1);
    fe.add_row({"TCP/IP on GigE", std::to_string(p),
                Table::num(ge.total(), 2)});
    fe.add_row({"TCP/IP on FastE", std::to_string(p),
                Table::num(fa.total(), 2)});
  }
  std::printf("%s\n", fe.to_string().c_str());
  std::printf("reading the ablation:\n");
  std::printf("  - removing jitter restores stable (low-spread) transfers;\n");
  std::printf("  - removing the duplex penalty mostly rescues PME (its\n");
  std::printf("    transposes are bidirectional exchanges);\n");
  std::printf("  - removing the SMP penalties makes dual nodes behave like\n");
  std::printf("    uni nodes, erasing the Figure 9a pathology;\n");
  std::printf("  - Fast Ethernet tracks GigE closely: the protocol path,\n");
  std::printf("    not the wire, limits this workload (§4.1);\n");
  std::printf("  - rendezvous for large messages couples senders to the\n");
  std::printf("    receivers' progress, adding wait time on top of eager\n");
  std::printf("    transfers.\n");
  return 0;
}
