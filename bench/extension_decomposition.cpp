// Extension study: which parallelism? (the paper's title question).
//
// The paper characterizes CHARMM's replicated-data ("easy") parallelism
// and finds it communication-bound beyond a handful of nodes. This bench
// makes the decomposition strategy itself the swept factor: for each
// network it runs the same 3552-atom system under
//   - atom  : replicated-data atom decomposition (the paper's CHARMM),
//   - force : block decomposition of the pair-interaction matrix with
//             fold/expand force reduction,
//   - task  : task decoupling — a subset of ranks runs only PME,
//             overlapping the classic ranks' bonded/nonbonded work,
//   - spatial: domain decomposition — each rank owns a box region and
//             exchanges only halo shells with its spatial neighbors,
// and compares wall clocks against the single-process baseline. The
// makespan column is the virtual wall clock of the slowest rank (under
// task decoupling classic and PME run concurrently, so summing the two
// component walls would double-count the overlapped time).
#include "figure_common.hpp"

#include "charmm/decomp_spec.hpp"

using namespace repro;
using repro::util::Table;

namespace {

core::ExperimentSpec decomp_spec(net::Network network, int p,
                                 const char* kind) {
  core::ExperimentSpec spec;
  spec.platform.network = network;
  spec.nprocs = p;
  spec.charmm.nsteps = bench::options().steps;
  spec.charmm.decomp = charmm::parse_decomp_spec(kind);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Extension (title question)",
                      "decomposition strategy as a swept factor");

  const std::vector<net::Network> networks = {
      net::Network::kTcpGigE, net::Network::kScoreGigE,
      net::Network::kMyrinetGM};
  const std::vector<const char*> kinds = {"atom", "force", "task", "spatial",
                                          "spatial:pme=pencil"};

  // Per network: a p=1 baseline plus decomposition x {2, 8} procs.
  std::vector<core::ExperimentSpec> specs;
  for (net::Network network : networks) {
    specs.push_back(decomp_spec(network, 1, "atom"));
    for (const char* kind : kinds) {
      for (int p : {2, 8}) {
        specs.push_back(decomp_spec(network, p, kind));
      }
    }
  }
  const std::vector<core::ExperimentResult> results = core::run_experiments(
      bench::prepared_system(), specs, bench::default_jobs());

  Table table({"network", "decomp", "procs", "makespan (s)", "speedup",
               "comm (s)", "sync (s)"});
  const std::size_t rows_per_network = 1 + 2 * kinds.size();
  std::size_t i = 0;
  for (net::Network network : networks) {
    const double base = results[i].metrics.makespan;  // atom p=1 row
    for (std::size_t row = 0; row < rows_per_network; ++row, ++i) {
      const auto& r = results[i];
      const perf::Breakdown total = r.breakdown.total_wall();
      table.add_row({net::to_string(network),
                     charmm::to_string(specs[i].charmm.decomp),
                     std::to_string(specs[i].nprocs),
                     Table::num(r.metrics.makespan, 3),
                     Table::num(base / r.metrics.makespan, 2),
                     Table::num(total.comm, 2), Table::num(total.sync, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // The "easy parallelism" verdict: best decomposition per network at the
  // largest swept size (p=8; every second row after the baseline of each
  // network block).
  std::printf("paper check (is there any easy parallelism?):\n");
  i = 0;
  for (net::Network network : networks) {
    const double base = results[i].metrics.makespan;
    const char* best_kind = nullptr;
    double best = 0.0;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& r = results[i + 2 + 2 * k];  // the p=8 row of kinds[k]
      if (best_kind == nullptr || r.metrics.makespan < best) {
        best = r.metrics.makespan;
        best_kind = kinds[k];
      }
    }
    std::printf("  %-7s p=8: best decomposition is %-18s "
                "(%.3f s, speedup %.2fx over p=1)\n",
                net::to_string(network).c_str(), best_kind,
                best, base / best);
    i += rows_per_network;
  }
  std::printf(
      "Among the replicated-data strategies the atom decomposition is\n"
      "still the one to beat on every network: force decomposition pays\n"
      "fold/expand traffic that commodity links cannot absorb, and task\n"
      "decoupling only wins on slow TCP at small process counts, where\n"
      "overlapping PME hides the network — the paper's conclusion that\n"
      "none of CHARMM's easy parallelism options scales. The spatial\n"
      "domain decomposition is the non-easy alternative: it replicates\n"
      "nothing and only exchanges halo shells. With the slab PME it still\n"
      "drags the replicated mesh along (position gather + reciprocal\n"
      "allreduce); the pencil rows decompose the mesh too, trading that\n"
      "all-to-all for region-sized plane exchanges and grouped pencil\n"
      "transposes (see the conclusion bench for the sweep to 128 procs).\n");
  return 0;
}
