// Figure 3: wall clock time of the total energy calculation for the
// reference case (MPI middleware, TCP/IP on Gigabit Ethernet,
// uni-processor nodes), split into the classic and the PME energy
// calculation, for 1, 2, 4 and 8 processors.
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header(
      "Figure 3",
      "execution time of the total energy calculation, reference case "
      "(TCP/IP on Ethernet, MPI middleware, uni-processor nodes)");

  std::vector<std::pair<core::Platform, int>> cells;
  for (int p : core::paper_processor_counts()) {
    cells.emplace_back(core::reference_platform(), p);
  }
  bench::prewarm(cells);

  Table table({"procs", "classic (s)", "pme (s)", "total (s)", "pme share"});
  for (int p : core::paper_processor_counts()) {
    const auto& r = bench::run_cached(core::reference_platform(), p);
    table.add_row({std::to_string(p), Table::num(r.classic_seconds(), 2),
                   Table::num(r.pme_seconds(), 2),
                   Table::num(r.total_seconds(), 2),
                   Table::pct(r.pme_seconds() / r.total_seconds())});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& p1 = bench::run_cached(core::reference_platform(), 1);
  const auto& p2 = bench::run_cached(core::reference_platform(), 2);
  std::printf("paper checks:\n");
  std::printf("  sequential PME slightly less than half of total : %s "
              "(%.0f%%)\n",
              p1.pme_seconds() / p1.total_seconds() < 0.5 ? "yes" : "NO",
              100.0 * p1.pme_seconds() / p1.total_seconds());
  std::printf("  PME at 2 procs larger than at 1 proc            : %s "
              "(%.2f s vs %.2f s)\n",
              p2.pme_seconds() > p1.pme_seconds() ? "yes" : "NO",
              p2.pme_seconds(), p1.pme_seconds());
  return 0;
}
