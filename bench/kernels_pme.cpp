// Microbenchmarks for the PME substrate on the paper's 80 x 36 x 48 grid
// (regression guards; not a paper figure).
#include <benchmark/benchmark.h>

#include "pme/bspline.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"

namespace {

using namespace repro;

const sysbuild::BuiltSystem& system_under_test() {
  static const sysbuild::BuiltSystem sys = sysbuild::build_myoglobin_like();
  return sys;
}

void BM_BsplineWeights(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  double vals[pme::kMaxOrder];
  double derivs[pme::kMaxOrder];
  double w = 0.1;
  for (auto _ : state) {
    pme::bspline_weights(order, w, vals, derivs);
    benchmark::DoNotOptimize(vals[0]);
    w += 0.31;
    if (w >= 1.0) w -= 1.0;
  }
}
BENCHMARK(BM_BsplineWeights)->Arg(4)->Arg(6);

void BM_BsplineWeightsBatch(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  constexpr std::size_t kBatch = 512;
  std::vector<double> w(kBatch);
  for (std::size_t a = 0; a < kBatch; ++a) {
    w[a] = static_cast<double>(a) / kBatch;
  }
  std::vector<double> vals(static_cast<std::size_t>(order) * kBatch);
  std::vector<double> derivs(static_cast<std::size_t>(order) * kBatch);
  for (auto _ : state) {
    pme::bspline_weights_batch(order, w.data(), kBatch, vals.data(),
                               derivs.data());
    benchmark::DoNotOptimize(vals[0]);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kBatch));
}
BENCHMARK(BM_BsplineWeightsBatch)->Arg(4)->Arg(6);

void BM_SerialPmeReciprocal(benchmark::State& state, util::KernelKind kind) {
  const auto& sys = system_under_test();
  pme::PmeParams params{80, 36, 48, 4, 0.34};
  pme::SerialPme pme(params, sys.box, kind);
  std::vector<util::Vec3> forces(
      static_cast<std::size_t>(sys.topo.natoms()));
  for (auto _ : state) {
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    const double e = pme.reciprocal(sys.topo, sys.positions, forces);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK_CAPTURE(BM_SerialPmeReciprocal, scalar, util::KernelKind::kScalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SerialPmeReciprocal, simd, util::KernelKind::kSimd)
    ->Unit(benchmark::kMillisecond);

void BM_EwaldExclusionCorrection(benchmark::State& state) {
  const auto& sys = system_under_test();
  std::vector<util::Vec3> forces(
      static_cast<std::size_t>(sys.topo.natoms()));
  for (auto _ : state) {
    std::fill(forces.begin(), forces.end(), util::Vec3{});
    const double e = pme::ewald_exclusion_correction(
        sys.topo, sys.box, sys.positions, 0.34, forces);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EwaldExclusionCorrection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
