// Figure 9: wall clock time of the classic and PME energy calculations on
// uni-processor vs dual-processor clusters, with TCP/IP on Gigabit
// Ethernet (a) and Myrinet (b).
#include "figure_common.hpp"

using namespace repro;
using repro::util::Table;

int main(int argc, char** argv) {
  bench::parse_figure_args(argc, argv);
  bench::print_header("Figure 9",
                      "uni-processor vs dual-processor nodes on TCP/IP (a) "
                      "and Myrinet (b), MPI middleware");

  std::vector<std::pair<core::Platform, int>> cells;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kMyrinetGM}) {
    for (int cpus : {1, 2}) {
      core::Platform platform;
      platform.network = network;
      platform.cpus_per_node = cpus;
      for (int p : core::paper_processor_counts()) {
        cells.emplace_back(platform, p);
      }
    }
  }
  bench::prewarm(cells);

  Table table({"network", "cpus/node", "procs", "classic (s)", "pme (s)",
               "total (s)"});
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kMyrinetGM}) {
    for (int cpus : {1, 2}) {
      core::Platform platform;
      platform.network = network;
      platform.cpus_per_node = cpus;
      for (int p : core::paper_processor_counts()) {
        const auto& r = bench::run_cached(platform, p);
        table.add_row({net::to_string(network),
                       cpus == 1 ? "uni" : "dual", std::to_string(p),
                       Table::num(r.classic_seconds(), 2),
                       Table::num(r.pme_seconds(), 2),
                       Table::num(r.total_seconds(), 2)});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper checks:\n");
  core::Platform tcp_dual;
  tcp_dual.cpus_per_node = 2;
  const auto& d2 = bench::run_cached(tcp_dual, 2);
  const auto& d4 = bench::run_cached(tcp_dual, 4);
  const auto& d8 = bench::run_cached(tcp_dual, 8);
  std::printf("  dual-processor TCP: time increases with node count : %s "
              "(%.2f -> %.2f -> %.2f s)\n",
              (d4.total_seconds() > d2.total_seconds() &&
               d8.total_seconds() > d4.total_seconds())
                  ? "yes"
                  : "NO",
              d2.total_seconds(), d4.total_seconds(), d8.total_seconds());
  core::Platform myri_uni, myri_dual;
  myri_uni.network = net::Network::kMyrinetGM;
  myri_dual.network = net::Network::kMyrinetGM;
  myri_dual.cpus_per_node = 2;
  const double mu = bench::run_cached(myri_uni, 8).total_seconds();
  const double md = bench::run_cached(myri_dual, 8).total_seconds();
  std::printf("  Myrinet unaffected by dual-processor nodes         : %s "
              "(8p: uni %.2f s, dual %.2f s)\n",
              std::abs(md - mu) / mu < 0.15 ? "yes" : "NO", mu, md);
  return 0;
}
